// Online-update battery (src/online): the streaming adaptive loop and its
// append-only generation log. Carries the ctest label "online"; the drift
// and rollback stress tests are the TSan targets of the `online-tsan`
// preset.
//
// What is pinned here:
//   * crash recovery — every way a crash can damage the log (torn manifest
//     tail, truncated/corrupted/missing tail generation, orphan files,
//     stray .tmp) recovers to the last checksummed-good generation with a
//     typed RecoveryReport, and damage recovery cannot explain throws;
//   * the online-vs-batch contract — an online run over stream S after
//     corpus C emits a final .fpsmb byte-identical to a one-shot batch
//     retrain over C+S, across thread counts and shard counts;
//   * a golden digest of that final artifact, committed as a fixture, so
//     the whole pipeline (parse, merge, canonical serialization, log
//     framing) cannot drift silently;
//   * rollback — a lint-rejected generation is quarantined without a
//     serving gap, observed by concurrent readers;
//   * drift adaptation — a growing password family's strength estimate
//     falls monotonically across compaction cycles while concurrent
//     readers score.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/grammar_lint.h"
#include "artifact/artifact.h"
#include "artifact/checksum.h"
#include "artifact_tamper.h"
#include "core/fuzzy_psm.h"
#include "corpus/dataset.h"
#include "corpus/dataset_reader.h"
#include "corpus/io.h"
#include "online/generation_log.h"
#include "online/online_updater.h"
#include "util/error.h"

namespace fs = std::filesystem;

namespace fpsm {
namespace {

using Bytes = std::vector<std::byte>;

// --------------------------------------------------------------- helpers

std::string dataPath(const char* name) {
  return std::string(FPSM_TEST_DATA_DIR) + "/" + name;
}

/// Fresh scratch directory per test (removed up front so reruns are clean).
std::string scratchDir(const char* name) {
  const std::string dir = testing::TempDir() + "online_test_" + name;
  fs::remove_all(dir);
  return dir;
}

Dataset fixtureDataset(const char* name) {
  Dataset ds(name);
  loadDatasetFile(dataPath(name), ds);
  return ds;
}

/// Base grammar with the committed fixture dictionary loaded, untrained.
FuzzyPsm fixtureBase() {
  FuzzyPsm psm;
  Dataset base("base");
  loadDatasetFile(dataPath("online_base.txt"), base);
  psm.loadBaseDictionary(base);
  return psm;
}

Bytes readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<char> buf{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  Bytes bytes(buf.size());
  std::memcpy(bytes.data(), buf.data(), buf.size());
  return bytes;
}

std::string hexDigest(const Bytes& bytes) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    xxhash64(bytes.data(), bytes.size())));
  return std::string(buf, 16);
}

void appendRaw(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << data;
  ASSERT_TRUE(out.good());
}

/// Drives the committed fixture stream through an updater in file order,
/// compacting every `chunkEntries` entries. Returns the final published
/// log sequence.
std::uint64_t driveFixtureStream(OnlineUpdater& updater,
                                 std::size_t chunkEntries) {
  DatasetReader reader(dataPath("online_stream.txt"));
  std::vector<Dataset::Entry> chunk;
  while (reader.nextChunk(chunk, chunkEntries)) {
    for (const auto& e : chunk) updater.accept(e.password, e.count);
    const auto result = updater.compactNow();
    EXPECT_TRUE(result.published) << result.rejection;
  }
  return updater.stats().lastSequence;
}

// ---------------------------------------------------- GenerationLog: happy

TEST(GenerationLog, CreatesAppendsAndReopens) {
  const std::string dir = scratchDir("happy");
  const std::string a = "first generation payload";
  const std::string b = "second generation payload";
  {
    GenerationLog log(dir);
    EXPECT_EQ(log.entries().size(), 0u);
    EXPECT_EQ(log.latest(), nullptr);
    EXPECT_EQ(log.nextSequence(), 1u);
    EXPECT_EQ(log.append(a.data(), a.size()), 1u);
    EXPECT_EQ(log.append(b.data(), b.size()), 2u);
    ASSERT_NE(log.latest(), nullptr);
    EXPECT_EQ(log.latest()->sequence, 2u);
    EXPECT_EQ(log.entry(1).bytes, a.size());
  }
  RecoveryReport report;
  GenerationLog log(dir, &report);
  EXPECT_TRUE(report.clean()) << report.render();
  EXPECT_EQ(report.manifestLines, 2u);
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.nextSequence(), 3u);
  EXPECT_EQ(log.entries()[0].file, "gen-000001.fpsmb");
  EXPECT_EQ(log.entries()[1].file, "gen-000002.fpsmb");
  // Round-trip the payloads through pathFor.
  const Bytes got = readFileBytes(log.pathFor(2));
  EXPECT_EQ(got.size(), b.size());
  EXPECT_EQ(std::memcmp(got.data(), b.data(), b.size()), 0);
  // verify() agrees with recovery.
  EXPECT_TRUE(log.verify().clean());
}

TEST(GenerationLog, NoSuchSequenceIsTyped) {
  const std::string dir = scratchDir("noseq");
  GenerationLog log(dir);
  try {
    (void)log.pathFor(7);
    FAIL() << "pathFor on an uncommitted sequence must throw";
  } catch (const GenerationLogError& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(GenerationLogErrorCode::NoSuchSequence));
  }
}

// ------------------------------------------- GenerationLog: crash recovery

TEST(GenerationLog, TornManifestTailLineIsSkippedAndHealed) {
  const std::string dir = scratchDir("torntail");
  const std::string payload = "payload";
  {
    GenerationLog log(dir);
    log.append(payload.data(), payload.size());
    log.append(payload.data(), payload.size());
  }
  // Simulate a crash mid-manifest-append: a prefix of a real entry line
  // with no (or a truncated) checksum field.
  appendRaw(dir + "/MANIFEST", "gen 3 gen-000003.fpsmb 7 deadbe");

  RecoveryReport report;
  GenerationLog log(dir, &report);
  ASSERT_EQ(report.skipped.size(), 1u) << report.render();
  EXPECT_EQ(report.skipped[0].reason, RecoverySkipReason::TornManifestLine);
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.latest()->sequence, 2u);

  // The torn line was truncated away, so appending and reopening is clean:
  // no valid-after-corrupt line sequence can ever form.
  EXPECT_EQ(log.append(payload.data(), payload.size()), 3u);
  RecoveryReport again;
  GenerationLog reopened(dir, &again);
  EXPECT_TRUE(again.clean()) << again.render();
  EXPECT_EQ(reopened.entries().size(), 3u);
}

TEST(GenerationLog, TruncatedTailGenerationIsQuarantined) {
  const std::string dir = scratchDir("truncfile");
  const std::string payload = "twelve bytes";
  std::string tailPath;
  {
    GenerationLog log(dir);
    log.append(payload.data(), payload.size());
    log.append(payload.data(), payload.size());
    tailPath = log.pathFor(2);
  }
  fs::resize_file(tailPath, 5);  // torn write under a committed line

  RecoveryReport report;
  GenerationLog log(dir, &report);
  ASSERT_EQ(report.skipped.size(), 1u) << report.render();
  EXPECT_EQ(report.skipped[0].reason, RecoverySkipReason::SizeMismatch);
  EXPECT_EQ(report.skipped[0].sequence, 2u);
  ASSERT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.latest()->sequence, 1u);
  // The dead sequence stays retired: the next append skips past it.
  EXPECT_EQ(log.nextSequence(), 3u);
  EXPECT_EQ(log.append(payload.data(), payload.size()), 3u);
  EXPECT_THROW((void)log.pathFor(2), GenerationLogError);
}

TEST(GenerationLog, CorruptTailGenerationIsQuarantined) {
  const std::string dir = scratchDir("corruptfile");
  const std::string payload = "some generation bytes";
  std::string tailPath;
  {
    GenerationLog log(dir);
    log.append(payload.data(), payload.size());
    log.append(payload.data(), payload.size());
    tailPath = log.pathFor(2);
  }
  {
    // Flip one byte without changing the size.
    std::fstream f(tailPath, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(3);
    f.put('X' ^ payload[3]);
  }
  RecoveryReport report;
  GenerationLog log(dir, &report);
  ASSERT_EQ(report.skipped.size(), 1u) << report.render();
  EXPECT_EQ(report.skipped[0].reason, RecoverySkipReason::ChecksumMismatch);
  EXPECT_EQ(report.skipped[0].sequence, 2u);
  EXPECT_EQ(log.latest()->sequence, 1u);
}

TEST(GenerationLog, MissingTailFileIsQuarantined) {
  const std::string dir = scratchDir("missingfile");
  const std::string payload = "bytes";
  std::string tailPath;
  {
    GenerationLog log(dir);
    log.append(payload.data(), payload.size());
    log.append(payload.data(), payload.size());
    tailPath = log.pathFor(2);
  }
  fs::remove(tailPath);
  RecoveryReport report;
  GenerationLog log(dir, &report);
  ASSERT_EQ(report.skipped.size(), 1u) << report.render();
  EXPECT_EQ(report.skipped[0].reason, RecoverySkipReason::MissingFile);
  EXPECT_EQ(log.latest()->sequence, 1u);
}

TEST(GenerationLog, CorruptLineMidManifestThrowsManifestCorrupt) {
  const std::string dir = scratchDir("midcorrupt");
  const std::string payload = "bytes";
  {
    GenerationLog log(dir);
    log.append(payload.data(), payload.size());
    log.append(payload.data(), payload.size());
  }
  // Damage the FIRST entry line (line 2 of the file, after the header):
  // flip one character inside it. A torn line mid-manifest cannot be a
  // crashed append, so recovery must refuse rather than guess.
  const std::string manifestPath = dir + "/MANIFEST";
  std::string manifest;
  {
    std::ifstream in(manifestPath, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    manifest = buf.str();
  }
  const std::size_t firstEntry = manifest.find("gen 1");
  ASSERT_NE(firstEntry, std::string::npos);
  manifest[firstEntry + 4] = '9';  // "gen 1" -> "gen 9": line hash mismatch
  {
    std::ofstream out(manifestPath, std::ios::binary | std::ios::trunc);
    out << manifest;
  }
  try {
    GenerationLog log(dir);
    FAIL() << "mid-manifest corruption must not open";
  } catch (const GenerationLogError& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(GenerationLogErrorCode::ManifestCorrupt));
  }
}

TEST(GenerationLog, DuplicatedSequenceThrowsSequenceOrder) {
  const std::string dir = scratchDir("seqorder");
  const std::string payload = "bytes";
  {
    GenerationLog log(dir);
    log.append(payload.data(), payload.size());
  }
  // Replay the (checksum-valid) entry line: append-only order broken.
  const std::string manifestPath = dir + "/MANIFEST";
  std::string manifest;
  {
    std::ifstream in(manifestPath, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    manifest = buf.str();
  }
  const std::size_t firstEntry = manifest.find("gen 1");
  ASSERT_NE(firstEntry, std::string::npos);
  appendRaw(manifestPath, manifest.substr(firstEntry));
  try {
    GenerationLog log(dir);
    FAIL() << "non-increasing sequences must not open";
  } catch (const GenerationLogError& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(GenerationLogErrorCode::SequenceOrder));
  }
}

TEST(GenerationLog, OrphanGenerationFileRetiresItsSequence) {
  const std::string dir = scratchDir("orphan");
  const std::string payload = "bytes";
  GenerationLog setup(dir);
  setup.append(payload.data(), payload.size());
  // Crash between rename and manifest append: the file exists, no line.
  {
    std::ofstream out(dir + "/gen-000005.fpsmb", std::ios::binary);
    out << "orphaned bytes never committed";
  }
  RecoveryReport report;
  GenerationLog log(dir, &report);
  EXPECT_TRUE(report.clean()) << report.render();
  ASSERT_EQ(log.entries().size(), 1u);
  // The orphan is not served, but its sequence is never reused.
  EXPECT_EQ(log.nextSequence(), 6u);
  EXPECT_EQ(log.append(payload.data(), payload.size()), 6u);
}

TEST(GenerationLog, StrayTmpFilesAreRemovedAtOpen) {
  const std::string dir = scratchDir("straytmp");
  {
    GenerationLog setup(dir);
    const std::string payload = "bytes";
    setup.append(payload.data(), payload.size());
  }
  const std::string tmp = dir + "/gen-000002.fpsmb.tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    out << "half-written";
  }
  GenerationLog log(dir);
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_EQ(log.entries().size(), 1u);
}

TEST(GenerationLog, VerifyDetectsLaterCorruption) {
  const std::string dir = scratchDir("verify");
  const std::string payload = "generation payload bytes";
  GenerationLog log(dir);
  log.append(payload.data(), payload.size());
  log.append(payload.data(), payload.size());
  EXPECT_TRUE(log.verify().clean());
  fs::resize_file(log.pathFor(1), 3);  // mid-log damage (bit rot, not crash)
  const RecoveryReport report = log.verify();
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_EQ(report.skipped[0].reason, RecoverySkipReason::SizeMismatch);
  EXPECT_EQ(report.skipped[0].sequence, 1u);
  EXPECT_NE(report.render().find("size-mismatch"), std::string::npos);
}

// --------------------------------------------------- GenerationLog: gc

TEST(GenerationLog, GcRetainsNewestAndPreservesSequences) {
  const std::string dir = scratchDir("gc_retention");
  GenerationLog log(dir);
  for (int i = 1; i <= 5; ++i) {
    const std::string payload = "generation " + std::to_string(i);
    log.append(payload.data(), payload.size());
  }

  const auto res = log.gc(2);
  EXPECT_EQ(res.kept, 2u);
  EXPECT_EQ(res.retired, 3u);
  EXPECT_EQ(res.removedFiles, 3u);

  // The retention rule: newest N survive WITH their original sequence
  // numbers — the window slides, it does not renumber.
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.entries()[0].sequence, 4u);
  EXPECT_EQ(log.entries()[1].sequence, 5u);
  EXPECT_EQ(log.nextSequence(), 6u);
  EXPECT_FALSE(fs::exists(dir + "/gen-000001.fpsmb"));
  EXPECT_FALSE(fs::exists(dir + "/gen-000002.fpsmb"));
  EXPECT_FALSE(fs::exists(dir + "/gen-000003.fpsmb"));
  EXPECT_TRUE(fs::exists(dir + "/gen-000004.fpsmb"));
  EXPECT_TRUE(fs::exists(dir + "/gen-000005.fpsmb"));

  // A reopen sees a clean two-entry log that keeps appending where the
  // pre-gc log left off.
  RecoveryReport report;
  GenerationLog reopened(dir, &report);
  EXPECT_TRUE(report.clean()) << report.render();
  ASSERT_EQ(reopened.entries().size(), 2u);
  EXPECT_EQ(reopened.nextSequence(), 6u);
  const std::string next = "generation 6";
  EXPECT_EQ(reopened.append(next.data(), next.size()), 6u);
  EXPECT_TRUE(reopened.verify().clean());
}

TEST(GenerationLog, GcKeepZeroThrows) {
  const std::string dir = scratchDir("gc_zero");
  GenerationLog log(dir);
  const std::string payload = "bytes";
  log.append(payload.data(), payload.size());
  EXPECT_THROW(log.gc(0), InvalidArgument);
  EXPECT_EQ(log.entries().size(), 1u);  // untouched
}

TEST(GenerationLog, GcIsNoopWhenNothingExceedsTheWindow) {
  const std::string dir = scratchDir("gc_noop");
  GenerationLog log(dir);
  EXPECT_EQ(log.gc(3).kept, 0u);  // empty log: nothing to do
  const std::string payload = "bytes";
  log.append(payload.data(), payload.size());
  log.append(payload.data(), payload.size());
  const auto res = log.gc(5);  // window larger than the log
  EXPECT_EQ(res.kept, 2u);
  EXPECT_EQ(res.retired, 0u);
  EXPECT_EQ(res.removedFiles, 0u);
  EXPECT_EQ(log.entries().size(), 2u);
  EXPECT_TRUE(log.verify().clean());
}

TEST(GenerationLog, GcReapsOrphansBelowTheKeptWindow) {
  const std::string dir = scratchDir("gc_orphans");
  {
    GenerationLog log(dir);
    const std::string payload = "bytes";
    log.append(payload.data(), payload.size());  // seq 1
    log.append(payload.data(), payload.size());  // seq 2
  }
  // An orphan from a crash between rename and manifest append: the file
  // for seq 3 exists but was never committed. Recovery retires its
  // sequence; gc may finally delete it once it falls below the window.
  {
    std::ofstream out(dir + "/gen-000003.fpsmb", std::ios::binary);
    out << "orphaned payload";
  }
  GenerationLog log(dir);
  EXPECT_EQ(log.nextSequence(), 4u);  // orphan retired its sequence
  const std::string next = "bytes";
  log.append(next.data(), next.size());  // seq 4

  const auto res = log.gc(1);
  EXPECT_EQ(res.retired, 2u);       // committed seqs 1 and 2
  EXPECT_EQ(res.removedFiles, 3u);  // ...plus the orphaned seq 3
  EXPECT_FALSE(fs::exists(dir + "/gen-000001.fpsmb"));
  EXPECT_FALSE(fs::exists(dir + "/gen-000002.fpsmb"));
  EXPECT_FALSE(fs::exists(dir + "/gen-000003.fpsmb"));
  EXPECT_TRUE(fs::exists(dir + "/gen-000004.fpsmb"));
}

TEST(GenerationLog, GcCrashBeforeManifestSwapLosesNothing) {
  const std::string dir = scratchDir("gc_crash_early");
  {
    GenerationLog log(dir);
    for (int i = 1; i <= 3; ++i) {
      const std::string payload = "generation " + std::to_string(i);
      log.append(payload.data(), payload.size());
    }
  }
  // Simulate a crash after gc wrote its rewritten manifest but BEFORE the
  // rename moved the commit authority: a stray MANIFEST.tmp exists and the
  // original manifest is untouched.
  {
    std::ofstream out(dir + "/MANIFEST.tmp", std::ios::binary);
    out << "# fpsm generation log v1\n";
  }
  RecoveryReport report;
  GenerationLog log(dir, &report);
  EXPECT_TRUE(report.clean()) << report.render();
  EXPECT_FALSE(fs::exists(dir + "/MANIFEST.tmp"));  // swept like any .tmp
  ASSERT_EQ(log.entries().size(), 3u);  // nothing was lost
  EXPECT_TRUE(log.verify().clean());
}

TEST(GenerationLog, GcCrashAfterManifestSwapRecoversAndReaps) {
  const std::string dir = scratchDir("gc_crash_late");
  {
    GenerationLog log(dir);
    for (int i = 1; i <= 4; ++i) {
      const std::string payload = "generation " + std::to_string(i);
      log.append(payload.data(), payload.size());
    }
  }
  // Simulate a crash after the manifest swap but before file deletion:
  // rewrite the manifest to the kept window (verbatim committed lines, as
  // gc writes them) while every gen file is still on disk.
  {
    std::ifstream in(dir + "/MANIFEST", std::ios::binary);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line)) lines.push_back(line);
    ASSERT_EQ(lines.size(), 5u);  // header + 4 entries
    std::ofstream out(dir + "/MANIFEST",
                      std::ios::binary | std::ios::trunc);
    out << lines[0] << '\n' << lines[3] << '\n' << lines[4] << '\n';
  }

  // Recovery: the kept entries serve; the undeleted files are orphans
  // whose sequences are already below nextSequence — clean, no skips.
  RecoveryReport report;
  GenerationLog log(dir, &report);
  EXPECT_TRUE(report.clean()) << report.render();
  ASSERT_EQ(log.entries().size(), 2u);
  EXPECT_EQ(log.entries()[0].sequence, 3u);
  EXPECT_EQ(log.nextSequence(), 5u);
  EXPECT_TRUE(fs::exists(dir + "/gen-000001.fpsmb"));  // not yet reaped

  // The next gc pass finishes the interrupted cleanup.
  const auto res = log.gc(2);
  EXPECT_EQ(res.retired, 0u);
  EXPECT_EQ(res.removedFiles, 2u);
  EXPECT_FALSE(fs::exists(dir + "/gen-000001.fpsmb"));
  EXPECT_FALSE(fs::exists(dir + "/gen-000002.fpsmb"));
  EXPECT_TRUE(fs::exists(dir + "/gen-000003.fpsmb"));
  EXPECT_TRUE(fs::exists(dir + "/gen-000004.fpsmb"));
}

// --------------------------------------------------- OnlineUpdater: basics

TEST(OnlineUpdater, BootstrapServesTheTrainedGrammar) {
  const std::string dir = scratchDir("bootstrap");
  FuzzyPsm seed = fixtureBase();
  seed.train(fixtureDataset("online_corpus.txt"));
  auto updater = OnlineUpdater::bootstrap(seed, dir);
  EXPECT_EQ(updater->log().entries().size(), 1u);
  EXPECT_EQ(updater->stats().lastSequence, 1u);
  // Serving from the compiled artifact is bit-identical to the grammar.
  for (const char* probe : {"password1", "qwerty12", "tyxdqd123", "zzzzzz"}) {
    EXPECT_EQ(updater->service().strengthBits(probe),
              seed.strengthBits(probe))
        << probe;
  }
  // A second bootstrap on a non-empty log is a usage error.
  EXPECT_THROW((void)OnlineUpdater::bootstrap(seed, dir), InvalidArgument);
  // An untrained grammar cannot bootstrap.
  EXPECT_THROW(
      (void)OnlineUpdater::bootstrap(fixtureBase(), scratchDir("untrained")),
      NotTrained);
}

TEST(OnlineUpdater, AcceptValidatesAndCoalesces) {
  const std::string dir = scratchDir("acceptval");
  FuzzyPsm seed = fixtureBase();
  seed.train(fixtureDataset("online_corpus.txt"));
  auto updater = OnlineUpdater::bootstrap(seed, dir);
  EXPECT_THROW(updater->accept(""), InvalidArgument);
  EXPECT_THROW(updater->accept(std::string("bad\x01pw")), InvalidArgument);
  updater->accept("password1", 0);  // explicit no-op
  EXPECT_EQ(updater->pendingUpdates(), 0u);
  updater->accept("password1", 2);
  updater->accept("password1");
  updater->accept("zzzzzz");
  EXPECT_EQ(updater->pendingUpdates(), 4u);
  const auto result = updater->compactNow();
  EXPECT_TRUE(result.published) << result.rejection;
  EXPECT_EQ(result.folded, 4u);
  EXPECT_EQ(result.sequence, 2u);
  EXPECT_EQ(updater->pendingUpdates(), 0u);
  // An empty compaction is a no-op: no generation written.
  const auto noop = updater->compactNow();
  EXPECT_FALSE(noop.published);
  EXPECT_EQ(noop.sequence, 0u);
  EXPECT_EQ(updater->log().entries().size(), 2u);
}

TEST(OnlineUpdater, ServiceUpdateRoutesThroughTheDurableLoop) {
  // The updater installs itself as the service's update sink, so the
  // in-process path MeterService::update() and the durable accept() are
  // one pipeline: occurrences sent through the service must land in the
  // updater's pending set, fold at compaction, and publish a log-backed
  // generation — and the service's own queue must stay empty throughout.
  const std::string dir = scratchDir("sinkfold");
  FuzzyPsm seed = fixtureBase();
  seed.train(fixtureDataset("online_corpus.txt"));
  auto updater = OnlineUpdater::bootstrap(seed, dir);

  updater->service().update("password1", 2);
  updater->service().update("zzzzzz");
  EXPECT_EQ(updater->pendingUpdates(), 3u);
  EXPECT_EQ(updater->service().pendingUpdates(), 0u);

  const auto result = updater->compactNow();
  EXPECT_TRUE(result.published) << result.rejection;
  EXPECT_EQ(result.folded, 3u);
  EXPECT_EQ(result.sequence, 2u);
  EXPECT_EQ(updater->pendingUpdates(), 0u);
  EXPECT_EQ(updater->stats().accepted, 3u);

  // The published grammar must score like a direct retrain that saw the
  // same occurrences — proof the sink-routed updates actually folded.
  FuzzyPsm oracle = fixtureBase();
  oracle.train(fixtureDataset("online_corpus.txt"));
  oracle.update("password1", 2);
  oracle.update("zzzzzz", 1);
  EXPECT_EQ(updater->service().strengthBits("password1"),
            oracle.strengthBits("password1"));
  EXPECT_EQ(updater->service().strengthBits("zzzzzz"),
            oracle.strengthBits("zzzzzz"));
}

// -------------------------------------- the online-vs-batch determinism core

TEST(OnlineUpdater, OnlineRunMatchesBatchRetrainByteIdentically) {
  // Batch oracle: one-shot retrain over C + S.
  FuzzyPsm batch = fixtureBase();
  Dataset all = fixtureDataset("online_corpus.txt");
  all.merge(fixtureDataset("online_stream.txt"));
  batch.train(all);
  const Bytes expected = compileArtifact(batch);

  // Online runs: same corpus then streamed S, across thread counts, shard
  // counts, and compaction cadences. Every final artifact must be
  // byte-identical to the oracle.
  struct Variant {
    unsigned threads;
    std::size_t shards;
    std::size_t chunk;
  };
  for (const Variant v : {Variant{1, 1, 4}, Variant{1, 16, 3},
                          Variant{4, 4, 1}, Variant{4, 16, 5}}) {
    SCOPED_TRACE("threads=" + std::to_string(v.threads) +
                 " shards=" + std::to_string(v.shards) +
                 " chunk=" + std::to_string(v.chunk));
    const std::string dir = scratchDir("equiv");
    FuzzyPsm seed = fixtureBase();
    seed.train(fixtureDataset("online_corpus.txt"));
    OnlineUpdaterConfig cfg;
    cfg.compactionThreads = v.threads;
    cfg.deltaShards = v.shards;
    auto updater = OnlineUpdater::bootstrap(seed, dir, cfg);
    const std::uint64_t lastSeq = driveFixtureStream(*updater, v.chunk);
    ASSERT_GT(lastSeq, 1u);
    const Bytes actual = readFileBytes(updater->log().pathFor(lastSeq));
    ASSERT_EQ(actual.size(), expected.size());
    EXPECT_EQ(std::memcmp(actual.data(), expected.data(), expected.size()),
              0)
        << "online final artifact diverged from batch retrain";
    // And the served scores equal the batch grammar's scores.
    for (const char* probe : {"password1", "dragon123", "zzzzzz", "abc123"}) {
      EXPECT_EQ(updater->service().strengthBits(probe),
                batch.strengthBits(probe))
          << probe;
    }
  }
}

TEST(OnlineUpdater, GoldenFinalArtifactDigestIsPinned) {
  // Canonical run: threads 1, 4 shards, compact every 3 stream entries.
  const std::string dir = scratchDir("golden");
  FuzzyPsm seed = fixtureBase();
  seed.train(fixtureDataset("online_corpus.txt"));
  OnlineUpdaterConfig cfg;
  cfg.compactionThreads = 1;
  cfg.deltaShards = 4;
  auto updater = OnlineUpdater::bootstrap(seed, dir, cfg);
  const std::uint64_t lastSeq = driveFixtureStream(*updater, 3);
  const std::string digest =
      hexDigest(readFileBytes(updater->log().pathFor(lastSeq)));

  std::ifstream in(dataPath("online_golden.digest"));
  ASSERT_TRUE(in.good())
      << "missing golden fixture tests/data/online_golden.digest; actual "
         "digest of this build: "
      << digest;
  std::string expected;
  in >> expected;
  EXPECT_EQ(digest, expected)
      << "the end-to-end online pipeline changed its output encoding; if "
         "intentional, re-pin tests/data/online_golden.digest";
}

// ----------------------------------------------- OnlineUpdater: durability

TEST(OnlineUpdater, ResumeAfterCrashServesLastGoodGeneration) {
  const std::string dir = scratchDir("resume");
  std::vector<std::string> probes = {"password1", "dragon123", "qwerty12",
                                     "zzzzzz"};
  std::vector<double> gen1Bits;
  std::string gen2Path;
  {
    FuzzyPsm seed = fixtureBase();
    seed.train(fixtureDataset("online_corpus.txt"));
    auto updater = OnlineUpdater::bootstrap(seed, dir);
    for (const auto& p : probes) {
      gen1Bits.push_back(updater->service().strengthBits(p));
    }
    updater->accept("dragon123", 7);
    updater->accept("zzzzzz", 2);
    const auto result = updater->compactNow();
    ASSERT_TRUE(result.published) << result.rejection;
    gen2Path = updater->log().pathFor(result.sequence);
  }  // "crash": updater destroyed, queue lost

  // The crash tore the newest generation file.
  fs::resize_file(gen2Path, fs::file_size(gen2Path) / 2);

  RecoveryReport report;
  auto resumed = OnlineUpdater::resume(dir, {}, &report);
  ASSERT_EQ(report.skipped.size(), 1u) << report.render();
  EXPECT_EQ(report.skipped[0].reason, RecoverySkipReason::SizeMismatch);
  EXPECT_EQ(report.skipped[0].sequence, 2u);
  EXPECT_EQ(resumed->stats().lastSequence, 1u);
  // No serving gap: scores are exactly generation 1's.
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(resumed->service().strengthBits(probes[i]), gen1Bits[i])
        << probes[i];
  }
  // The loop keeps going: new updates land in a fresh generation whose
  // sequence skips the dead one.
  resumed->accept("dragon123", 7);
  const auto result = resumed->compactNow();
  EXPECT_TRUE(result.published) << result.rejection;
  EXPECT_EQ(result.sequence, 3u);
}

TEST(OnlineUpdater, ResumeSkipsCommittedButUnloadableGeneration) {
  const std::string dir = scratchDir("unloadable");
  {
    FuzzyPsm seed = fixtureBase();
    seed.train(fixtureDataset("online_corpus.txt"));
    auto updater = OnlineUpdater::bootstrap(seed, dir);
  }
  {
    // A generation whose bytes checksum fine in the log but are not a
    // valid artifact: a real compiled grammar with its magic stomped
    // (same tamper primitives as the loader's corruption battery). The
    // log commits it — it only promises byte integrity — and gate 1
    // rejects it on resume.
    FuzzyPsm seed = fixtureBase();
    seed.train(fixtureDataset("online_corpus.txt"));
    Bytes tampered = compileArtifact(seed);
    test_tamper::writeU32(tampered, 0, 0xBADC0DEu);
    test_tamper::expectRejected(tampered, "stomped magic");
    GenerationLog log(dir);
    ASSERT_EQ(log.append(tampered.data(), tampered.size()), 2u);
  }
  RecoveryReport report;
  auto resumed = OnlineUpdater::resume(dir, {}, &report);
  ASSERT_EQ(report.skipped.size(), 1u) << report.render();
  EXPECT_EQ(report.skipped[0].reason,
            RecoverySkipReason::UnreadableArtifact);
  EXPECT_EQ(report.skipped[0].sequence, 2u);
  EXPECT_EQ(resumed->stats().lastSequence, 1u);
  EXPECT_TRUE(resumed->service().snapshot()->trained());
}

TEST(OnlineUpdater, ResumeWithNothingServableThrows) {
  const std::string dir = scratchDir("nothingservable");
  {
    GenerationLog log(dir);
    const std::string junk = "no generation here is an artifact";
    log.append(junk.data(), junk.size());
  }
  EXPECT_THROW((void)OnlineUpdater::resume(dir), GenerationLogError);
}

// ------------------------------------------------ rollback without a gap

TEST(OnlineUpdater, LintRejectedGenerationRollsBackWithoutServingGap) {
  const std::string dir = scratchDir("rollback");
  FuzzyPsm seed = fixtureBase();
  seed.train(fixtureDataset("online_corpus.txt"));

  OnlineUpdaterConfig cfg;
  // Deterministic rejection injection via the extra acceptance gate:
  // every candidate generation is refused with a synthetic lint report.
  // Bootstrap itself is unaffected (the gate runs on compaction and
  // resume, not on bootstrap), which is exactly the setup the rollback
  // path needs.
  cfg.publishGate = [](const FlatGrammarView&) {
    LintReport report;
    report.add(LintCode::MassNotConserved, LintSeverity::Error, "policy",
               "rejected by test acceptance gate");
    throw GrammarLintError(std::move(report));
  };
  auto updater = OnlineUpdater::bootstrap(seed, dir, cfg);

  const std::vector<std::string> probes = {"password1", "dragon123",
                                           "qwerty12", "zzzzzz"};
  std::vector<double> gen1Bits;
  for (const auto& p : probes) {
    gen1Bits.push_back(updater->service().strengthBits(p));
  }

  // Concurrent readers assert there is never a serving gap: every score
  // they observe equals generation 1's, before, during, and after the
  // rejected publishes. (TSan target.)
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto scores = updater->service().scoreBatch(probes);
        for (std::size_t i = 0; i < probes.size(); ++i) {
          if (scores[i].bits != gen1Bits[i]) {
            ADD_FAILURE() << "reader observed a non-gen-1 score for "
                          << probes[i];
            return;
          }
        }
      }
    });
  }

  for (int round = 1; round <= 3; ++round) {
    updater->accept("dragon123", 5);
    updater->accept("password1", 2);
    const auto result = updater->compactNow();
    EXPECT_FALSE(result.published);
    EXPECT_FALSE(result.rejection.empty());
    EXPECT_EQ(result.folded, 7u);
    const auto stats = updater->stats();
    EXPECT_EQ(stats.rollbacks, static_cast<std::uint64_t>(round));
    EXPECT_EQ(stats.quarantined, static_cast<std::uint64_t>(7 * round));
    EXPECT_EQ(stats.published, 0u);
    EXPECT_EQ(stats.lastSequence, 1u);  // still serving the bootstrap gen
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // The rejected generations are quarantined in the log (committed bytes,
  // never served), and the service still answers with generation 1.
  EXPECT_EQ(updater->log().entries().size(), 4u);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(updater->service().strengthBits(probes[i]), gen1Bits[i]);
  }
  updater.reset();

  // Resume under the same poisoned gate: EVERY generation (including the
  // bootstrap one) fails lint, so there is nothing servable — typed
  // refusal, with each rejection reported.
  RecoveryReport report;
  try {
    (void)OnlineUpdater::resume(dir, cfg, &report);
    FAIL() << "poisoned lint gate must leave nothing servable";
  } catch (const GenerationLogError& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(GenerationLogErrorCode::NoSuchSequence));
  }
  EXPECT_EQ(report.skipped.size(), 4u) << report.render();
  for (const auto& skip : report.skipped) {
    EXPECT_EQ(skip.reason, RecoverySkipReason::LintRejected);
  }

  // Under the DEFAULT gate the quarantined generations are perfectly
  // valid grammars (the rejection was pure policy), so a default resume
  // serves the newest one — quarantine is gate-dependent by design.
  auto resumed = OnlineUpdater::resume(dir);
  EXPECT_EQ(resumed->stats().lastSequence, 4u);
}

// ----------------------------------------------------- drift stress (TSan)

TEST(OnlineUpdater, DriftStressAdaptsMonotonicallyUnderConcurrentReaders) {
  const std::string dir = scratchDir("drift");
  // Seed: heavy static background, no sign of the drifted family.
  FuzzyPsm seed;
  for (const char* w : {"password", "dragon", "monkey"}) seed.addBaseWord(w);
  Dataset corpus("seed");
  corpus.add("password1", 60);
  corpus.add("123456", 30);
  corpus.add("monkey!", 10);
  seed.train(corpus);

  OnlineUpdaterConfig cfg;
  cfg.deltaShards = 8;
  auto updater = OnlineUpdater::bootstrap(seed, dir, cfg);

  const std::string drifted = "Dr@gon2026";  // reuse+modification family
  const std::vector<std::string> probes = {"password1", "123456", drifted,
                                           "monkey!"};

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint64_t lastGen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto scores = updater->service().scoreBatch(probes);
        for (const auto& s : scores) {
          // +inf is legitimate early on (the drifted family is unseen and
          // correctly scores probability 0); NaN never is.
          if (std::isnan(s.bits)) {
            ADD_FAILURE() << "NaN score under drift";
            return;
          }
          // Generations only move forward under concurrent publishes.
          if (s.generation < lastGen) {
            ADD_FAILURE() << "generation went backwards";
            return;
          }
          lastGen = s.generation;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Make sure the readers genuinely overlap the compaction cycles: on a
  // loaded single-core machine they may not be scheduled before the tiny
  // cycles below finish. Bounded wait so a crashed reader cannot hang us.
  for (int spin = 0; reads.load(std::memory_order_relaxed) == 0 &&
                     !testing::Test::HasFailure() && spin < 5000;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // N compaction cycles: the drifted family's share of the update stream
  // grows each cycle while the background stays constant, so its estimated
  // strength must fall monotonically — the meter adapting to drift.
  std::vector<double> driftedBits;
  driftedBits.push_back(updater->service().strengthBits(drifted));
  constexpr int kCycles = 5;
  for (int cycle = 1; cycle <= kCycles; ++cycle) {
    updater->accept("password1", 5);  // constant background
    updater->accept(drifted, static_cast<std::uint64_t>(8 * cycle));
    const auto result = updater->compactNow();
    ASSERT_TRUE(result.published) << result.rejection;
    driftedBits.push_back(updater->service().strengthBits(drifted));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  for (std::size_t i = 1; i < driftedBits.size(); ++i) {
    EXPECT_LT(driftedBits[i], driftedBits[i - 1])
        << "cycle " << i << ": drifted family did not strengthen its "
        << "probability estimate";
  }
  EXPECT_LT(driftedBits.back(), driftedBits.front() - 1.0)
      << "meter barely adapted across " << kCycles << " cycles";
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(updater->stats().published, static_cast<std::uint64_t>(kCycles));
  EXPECT_EQ(updater->stats().rollbacks, 0u);
}

// --------------------------------------- background compactor smoke (TSan)

TEST(OnlineUpdater, BackgroundCompactorPublishesUnderLoad) {
  const std::string dir = scratchDir("background");
  FuzzyPsm seed = fixtureBase();
  seed.train(fixtureDataset("online_corpus.txt"));
  OnlineUpdaterConfig cfg;
  cfg.backgroundCompactor = true;
  cfg.compactionInterval = std::chrono::milliseconds(5);
  cfg.maxPendingUpdates = 64;
  auto updater = OnlineUpdater::bootstrap(seed, dir, cfg);

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&updater, w] {
      for (int i = 0; i < 200; ++i) {
        updater->accept(w == 0 ? "password1" : "dragon123", 1);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)updater->service().score("password1");
    }
  });
  for (auto& t : writers) t.join();
  // Flush whatever the background compactor has not picked up yet.
  const auto result = updater->compactNow();
  (void)result;  // may be a no-op if the compactor already drained it all
  stop.store(true, std::memory_order_release);
  reader.join();

  const auto stats = updater->stats();
  EXPECT_EQ(stats.accepted, 400u);
  EXPECT_GE(stats.published, 1u);
  EXPECT_EQ(updater->pendingUpdates(), 0u);
  // Every accepted occurrence was folded exactly once: the served grammar
  // equals the oracle that folds all 400 in one step.
  FuzzyPsm oracle = fixtureBase();
  Dataset all = fixtureDataset("online_corpus.txt");
  all.add("password1", 200);
  all.add("dragon123", 200);
  oracle.train(all);
  for (const char* probe : {"password1", "dragon123", "qwerty12"}) {
    EXPECT_EQ(updater->service().strengthBits(probe),
              oracle.strengthBits(probe))
        << probe;
  }
}

}  // namespace
}  // namespace fpsm
