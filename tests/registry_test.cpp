// Multi-tenant registry battery (src/registry). Carries the ctest label
// "registry"; the evict/reload stress test is the `registry-tsan` preset's
// target.
//
// What is pinned here:
//   * the differential contract — a tenant served through GrammarRegistry
//     scores bit-identically to a standalone MeterService over the same
//     artifact bytes, for three tenants with deliberately distinct
//     grammars, including after an evict→reload cycle and after an
//     online-update compaction (oracle: an OnlineUpdater driven with the
//     identical update schedule in its own directory);
//   * LRU eviction under a resident-bytes budget — least-recently-touched
//     loses, pinned tenants are exempt, a just-loaded tenant cannot evict
//     itself, and a sole over-budget tenant still serves (soft budget);
//   * flush-on-evict — pending accepted updates compact into a final
//     generation before the unit drops, so eviction loses nothing;
//   * the compaction bar — a tenant with a compaction in flight (busy)
//     refuses eviction until the cycle completes;
//   * no serving gap — readers hammering score()/scoreBatch() while
//     another thread evicts and reloads the same tenants always get
//     bit-exact scores from one consistent snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "artifact/artifact.h"
#include "core/fuzzy_psm.h"
#include "online/online_updater.h"
#include "registry/grammar_registry.h"
#include "serve/meter_service.h"
#include "util/error.h"

namespace fs = std::filesystem;

namespace fpsm {
namespace {

// --------------------------------------------------------------- helpers

/// Fresh scratch directory per test (removed up front so reruns are clean).
std::string scratchDir(const char* name) {
  const std::string dir = testing::TempDir() + "registry_test_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Three deliberately distinct grammars, one per diversity axis the
/// registry exists for: different base dictionaries AND different trained
/// mass, so at least one probe scores differently under every pair.
FuzzyPsm tenantGrammar(int variant) {
  FuzzyPsm psm;
  switch (variant) {
    case 0:  // "zh": digit-heavy traffic, short mangled words
      for (const char* w : {"wang", "li", "zhang", "woaini", "dragon"}) {
        psm.addBaseWord(w);
      }
      psm.update("woaini1314", 30);
      psm.update("wang123", 12);
      psm.update("123456", 40);
      psm.update("li4567", 6);
      psm.update("zhang88", 9);
      break;
    case 1:  // "en": word+suffix traffic
      for (const char* w :
           {"password", "monkey", "letmein", "qwerty", "iloveyou"}) {
        psm.addBaseWord(w);
      }
      psm.update("password1", 25);
      psm.update("monkey!", 7);
      psm.update("letmein99", 5);
      psm.update("qwerty12", 14);
      psm.update("iloveyou2", 8);
      break;
    default:  // "policy": >= 8 chars, mixed-class traffic
      for (const char* w : {"sunshine", "princess", "computer", "superman"}) {
        psm.addBaseWord(w);
      }
      psm.update("Sunshine12", 18);
      psm.update("Pr1ncess!", 6);
      psm.update("computer99", 11);
      psm.update("Superman#1", 4);
      break;
  }
  return psm;
}

/// Probe set every tenant can score (fallback structures cover the rest).
const std::vector<std::string>& probes() {
  static const std::vector<std::string> kProbes = {
      "woaini1314", "wang123",    "123456",    "password1",  "monkey!",
      "qwerty12",   "Sunshine12", "Pr1ncess!", "computer99", "zzzzzz99",
      "Dragon123",  "tyxdqd123",
  };
  return kProbes;
}

std::vector<std::byte> tenantArtifact(int variant) {
  return compileArtifact(tenantGrammar(variant));
}

/// Standalone single-grammar oracle over the exact same artifact bytes.
std::unique_ptr<MeterService> standaloneService(
    const std::vector<std::byte>& bytes) {
  return std::make_unique<MeterService>(
      GrammarArtifact::fromBytes(std::vector<std::byte>(bytes)));
}

/// Bits for every probe through `score`, in probe order.
template <typename ScoreFn>
std::vector<double> probeBits(ScoreFn&& score) {
  std::vector<double> bits;
  bits.reserve(probes().size());
  for (const auto& p : probes()) bits.push_back(score(p));
  return bits;
}

// ------------------------------------------- tenant ids and registration

TEST(GrammarRegistryTest, ValidTenantIdRules) {
  EXPECT_TRUE(GrammarRegistry::validTenantId("acme"));
  EXPECT_TRUE(GrammarRegistry::validTenantId("site-7.prod_eu"));
  EXPECT_TRUE(GrammarRegistry::validTenantId(std::string(64, 'a')));
  EXPECT_FALSE(GrammarRegistry::validTenantId(""));
  EXPECT_FALSE(GrammarRegistry::validTenantId(std::string(65, 'a')));
  EXPECT_FALSE(GrammarRegistry::validTenantId(".hidden"));
  EXPECT_FALSE(GrammarRegistry::validTenantId(".."));
  EXPECT_FALSE(GrammarRegistry::validTenantId("a/b"));
  EXPECT_FALSE(GrammarRegistry::validTenantId("a b"));
  EXPECT_FALSE(GrammarRegistry::validTenantId("caf\xc3\xa9"));
}

TEST(GrammarRegistryTest, AddTenantValidatesAndRejectsDuplicates) {
  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("add");
  GrammarRegistry registry(cfg);

  const auto bytes = tenantArtifact(0);
  registry.addTenant("acme", bytes.data(), bytes.size());
  EXPECT_THROW(registry.addTenant("acme", bytes.data(), bytes.size()),
               InvalidArgument);
  EXPECT_THROW(registry.addTenant("bad/id", bytes.data(), bytes.size()),
               InvalidArgument);
  // Garbage bytes are rejected before anything touches disk.
  const std::vector<std::byte> junk(64, std::byte{0x5a});
  EXPECT_THROW(registry.addTenant("junk", junk.data(), junk.size()), Error);
  EXPECT_FALSE(fs::exists(cfg.rootDir + "/junk"));

  EXPECT_EQ(registry.tenantIds(), std::vector<std::string>{"acme"});
}

TEST(GrammarRegistryTest, UnknownTenantThrowsTypedErrorAndCounts) {
  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("unknown");
  GrammarRegistry registry(cfg);

  try {
    registry.score("ghost", "password1");
    FAIL() << "expected UnknownTenantError";
  } catch (const UnknownTenantError& e) {
    EXPECT_EQ(e.tenant(), "ghost");
  }
  EXPECT_THROW(registry.update("ghost", "password1"), UnknownTenantError);
  EXPECT_THROW(registry.pinTenant("ghost", true), UnknownTenantError);
  EXPECT_EQ(registry.stats().unknownTenant, 3u);
}

TEST(GrammarRegistryTest, ReopensExistingRootAndResumesTenants) {
  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("reopen");
  const auto bytes0 = tenantArtifact(0);
  const auto bytes1 = tenantArtifact(1);
  {
    GrammarRegistry registry(cfg);
    registry.addTenant("zh", bytes0.data(), bytes0.size());
    registry.addTenant("en", bytes1.data(), bytes1.size());
  }
  GrammarRegistry reopened(cfg);
  EXPECT_EQ(reopened.tenantIds(), (std::vector<std::string>{"en", "zh"}));
  EXPECT_FALSE(reopened.resident("zh"));

  // First touch cold-loads via the tenant's own log.
  const auto oracle = standaloneService(bytes0);
  EXPECT_EQ(reopened.score("zh", "woaini1314").bits,
            oracle->score("woaini1314").bits);
  EXPECT_TRUE(reopened.resident("zh"));
  EXPECT_EQ(reopened.stats().coldLoads, 1u);
}

// ------------------------------------------------- differential contract

TEST(GrammarRegistryTest, ScoresBitIdenticalToStandaloneServicePerTenant) {
  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("differential");
  GrammarRegistry registry(cfg);

  const std::vector<std::string> ids = {"zh", "en", "policy"};
  std::vector<std::vector<double>> referenceBits;
  for (int v = 0; v < 3; ++v) {
    const auto bytes = tenantArtifact(v);
    registry.addTenant(ids[v], bytes.data(), bytes.size());
    const auto oracle = standaloneService(bytes);
    referenceBits.push_back(
        probeBits([&](const std::string& p) { return oracle->score(p).bits; }));
  }

  // The grammars must actually be distinct, or the differential proves
  // nothing about routing.
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      EXPECT_NE(referenceBits[a], referenceBits[b])
          << ids[a] << " and " << ids[b] << " trained identical grammars";
    }
  }

  for (int v = 0; v < 3; ++v) {
    const auto viaRegistry = probeBits(
        [&](const std::string& p) { return registry.score(ids[v], p).bits; });
    EXPECT_EQ(viaRegistry, referenceBits[v]) << "tenant " << ids[v];

    // Batch path: same contract, one consistent snapshot.
    const auto batch = registry.scoreBatch(ids[v], probes());
    ASSERT_EQ(batch.size(), probes().size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].bits, referenceBits[v][i]) << "tenant " << ids[v];
      EXPECT_EQ(batch[i].generation, batch[0].generation);
    }
  }
  EXPECT_EQ(registry.stats().resident, 3u);
}

TEST(GrammarRegistryTest, DifferentialHoldsAfterEvictReloadAndCompaction) {
  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("differential_evolve");
  GrammarRegistry registry(cfg);

  const std::vector<std::string> ids = {"zh", "en", "policy"};
  // Per-tenant oracle: an OnlineUpdater in its own directory, bootstrapped
  // from the same trained grammar, driven with the identical update
  // schedule. The online-vs-batch contract makes its generations
  // byte-identical to the registry unit's, so scores must match exactly.
  std::vector<std::unique_ptr<OnlineUpdater>> oracles;
  for (int v = 0; v < 3; ++v) {
    const FuzzyPsm trained = tenantGrammar(v);
    registry.addTenant(ids[v], trained);
    oracles.push_back(OnlineUpdater::bootstrap(
        trained, scratchDir(("oracle_" + ids[v]).c_str())));
  }

  const auto updateSchedule = [](int v) {
    std::vector<std::pair<std::string, std::uint64_t>> schedule = {
        {"newtrend" + std::to_string(v), 5 + static_cast<std::uint64_t>(v)},
        {probes()[static_cast<std::size_t>(v)], 3},
        {"zzzzzz99", 2},
    };
    return schedule;
  };

  for (int v = 0; v < 3; ++v) {
    for (const auto& [pw, n] : updateSchedule(v)) {
      registry.update(ids[v], pw, n);
      oracles[static_cast<std::size_t>(v)]->accept(pw, n);
    }
    const auto result = registry.compactTenant(ids[v]);
    EXPECT_TRUE(result.published) << result.rejection;
    const auto oracleResult = oracles[static_cast<std::size_t>(v)]->compactNow();
    EXPECT_TRUE(oracleResult.published) << oracleResult.rejection;
    EXPECT_EQ(result.sequence, oracleResult.sequence);
  }

  // After compaction: registry scores == oracle scores, bit for bit.
  for (int v = 0; v < 3; ++v) {
    const auto expected = probeBits([&](const std::string& p) {
      return oracles[static_cast<std::size_t>(v)]->service().score(p).bits;
    });
    const auto actual = probeBits(
        [&](const std::string& p) { return registry.score(ids[v], p).bits; });
    EXPECT_EQ(actual, expected) << "tenant " << ids[v] << " after compaction";
  }

  // After evict -> reload: the unit resumes from its newest generation and
  // must still match the (never-evicted) oracle exactly.
  for (int v = 0; v < 3; ++v) {
    ASSERT_TRUE(registry.evictTenant(ids[v]));
    EXPECT_FALSE(registry.resident(ids[v]));
    const auto expected = probeBits([&](const std::string& p) {
      return oracles[static_cast<std::size_t>(v)]->service().score(p).bits;
    });
    const auto actual = probeBits(
        [&](const std::string& p) { return registry.score(ids[v], p).bits; });
    EXPECT_EQ(actual, expected)
        << "tenant " << ids[v] << " after evict -> reload";
    const auto batch = registry.scoreBatch(ids[v], probes());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].bits, expected[i]);
    }
  }
}

// --------------------------------------------------- budget and eviction

TEST(GrammarRegistryTest, LruEvictionRespectsBudgetPinningAndSelfExemption) {
  const auto bytes0 = tenantArtifact(0);
  const auto bytes1 = tenantArtifact(1);
  const auto bytes2 = tenantArtifact(2);
  const std::uint64_t largest =
      std::max({GrammarArtifact::fromBytes(std::vector<std::byte>(bytes0))
                    ->sizeBytes(),
                GrammarArtifact::fromBytes(std::vector<std::byte>(bytes1))
                    ->sizeBytes(),
                GrammarArtifact::fromBytes(std::vector<std::byte>(bytes2))
                    ->sizeBytes()});

  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("budget");
  cfg.residentBytesBudget = largest + largest / 4;  // fits exactly one
  GrammarRegistry registry(cfg);
  registry.addTenant("a", bytes0.data(), bytes0.size());
  registry.addTenant("b", bytes1.data(), bytes1.size());
  registry.addTenant("c", bytes2.data(), bytes2.size());

  // Touch order a, b, c: every new load evicts the previous sole tenant.
  (void)registry.score("a", "123456");
  EXPECT_TRUE(registry.resident("a"));
  (void)registry.score("b", "123456");
  EXPECT_FALSE(registry.resident("a"));
  EXPECT_TRUE(registry.resident("b"));
  (void)registry.score("c", "123456");
  EXPECT_FALSE(registry.resident("b"));
  EXPECT_TRUE(registry.resident("c"));
  EXPECT_EQ(registry.stats().evictions, 2u);
  EXPECT_LE(registry.residentBytes(), cfg.residentBytesBudget);

  // Reload of a evicts c (LRU), and a load never evicts itself.
  (void)registry.score("a", "123456");
  EXPECT_TRUE(registry.resident("a"));
  EXPECT_FALSE(registry.resident("c"));

  // Pinned tenants are exempt from budget eviction: loading b with a
  // pinned leaves both resident (soft budget) rather than evicting a.
  registry.pinTenant("a", true);
  (void)registry.score("b", "123456");
  EXPECT_TRUE(registry.resident("a"));
  EXPECT_TRUE(registry.resident("b"));
  EXPECT_GT(registry.residentBytes(), cfg.residentBytesBudget);

  // Explicit eviction refuses pinned tenants, then works once unpinned.
  EXPECT_FALSE(registry.evictTenant("a"));
  registry.pinTenant("a", false);
  EXPECT_TRUE(registry.evictTenant("a"));
  EXPECT_FALSE(registry.evictTenant("a"));  // already cold
}

TEST(GrammarRegistryTest, EvictionFlushesPendingUpdatesToTheLog) {
  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("flush");
  GrammarRegistry registry(cfg);
  const FuzzyPsm trained = tenantGrammar(1);
  registry.addTenant("en", trained);

  // Oracle: same grammar, same single update, explicit compaction.
  const auto oracle =
      OnlineUpdater::bootstrap(trained, scratchDir("flush_oracle"));
  registry.update("en", "freshword9", 4);
  oracle->accept("freshword9", 4);
  ASSERT_TRUE(oracle->compactNow().published);

  // Evict with pending updates: flushOnEvict compacts first, so the log
  // gains a generation and nothing accepted is lost.
  ASSERT_TRUE(registry.evictTenant("en"));
  EXPECT_EQ(registry.stats().evictFlushes, 1u);
  const auto infos = registry.tenants();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].logGenerations, 2u);  // bootstrap + flushed delta

  // The reloaded unit serves the flushed generation: identical to the
  // oracle that compacted the same update explicitly.
  EXPECT_EQ(registry.score("en", "freshword9").bits,
            oracle->service().score("freshword9").bits);
  EXPECT_EQ(registry.score("en", "password1").bits,
            oracle->service().score("password1").bits);
}

TEST(GrammarRegistryTest, CompactionInFlightBarsEviction) {
  std::atomic<bool> armed{false};
  std::atomic<bool> inGate{false};
  std::mutex gateMutex;
  std::condition_variable gateCv;
  bool release = false;

  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("busy");
  // The publish gate runs inside compactNow() while the registry marks
  // the tenant busy; blocking it holds the compaction (and the bar) open.
  cfg.tenantConfig.publishGate = [&](const FlatGrammarView&) {
    if (!armed.load()) return;  // resume-path invocations pass through
    inGate.store(true);
    std::unique_lock<std::mutex> lock(gateMutex);
    gateCv.wait(lock, [&] { return release; });
  };
  GrammarRegistry registry(cfg);
  registry.addTenant("acme", tenantGrammar(0));
  registry.loadTenant("acme");
  registry.update("acme", "newtrend1", 3);

  armed.store(true);
  std::thread compactor([&] {
    const auto result = registry.compactTenant("acme");
    EXPECT_TRUE(result.published) << result.rejection;
  });
  while (!inGate.load()) std::this_thread::yield();

  // Busy tenant: explicit eviction must refuse.
  EXPECT_FALSE(registry.evictTenant("acme"));
  EXPECT_TRUE(registry.resident("acme"));

  {
    std::lock_guard<std::mutex> lock(gateMutex);
    release = true;
  }
  gateCv.notify_all();
  compactor.join();
  armed.store(false);

  // Compaction done: the bar lifts.
  EXPECT_TRUE(registry.evictTenant("acme"));
}

// ------------------------------------------------------ concurrency (TSan)

TEST(GrammarRegistryTest, ConcurrentEvictReloadNeverGapsOrMixesTenants) {
  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("stress");
  GrammarRegistry registry(cfg);

  const std::vector<std::string> ids = {"zh", "en"};
  std::vector<std::vector<double>> referenceBits;
  for (int v = 0; v < 2; ++v) {
    const auto bytes = tenantArtifact(v);
    registry.addTenant(ids[static_cast<std::size_t>(v)], bytes.data(),
                       bytes.size());
    const auto oracle = standaloneService(bytes);
    referenceBits.push_back(
        probeBits([&](const std::string& p) { return oracle->score(p).bits; }));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::size_t turn = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const std::size_t v = turn++ % ids.size();
        // Single-score path: bit-exact against the standalone reference —
        // a serving gap, a stale unit, or cross-tenant routing would all
        // break exact equality.
        const auto one = registry.score(ids[v], probes()[turn % 3]);
        ASSERT_EQ(one.bits, referenceBits[v][turn % 3]);
        // Batch path: one consistent snapshot, every score bit-exact.
        const auto batch = registry.scoreBatch(ids[v], probes());
        ASSERT_EQ(batch.size(), probes().size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          ASSERT_EQ(batch[i].bits, referenceBits[v][i]);
          ASSERT_EQ(batch[i].generation, batch[0].generation);
        }
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread churn([&] {
    std::size_t turn = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto& id = ids[turn++ % ids.size()];
      (void)registry.evictTenant(id);
      registry.loadTenant(id);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  churn.join();
  for (auto& t : readers) t.join();

  EXPECT_GT(checked.load(), 0u);
  EXPECT_GT(registry.stats().coldLoads, 2u);
  // Both tenants still serve correctly after the churn settles.
  for (std::size_t v = 0; v < 2; ++v) {
    const auto bits = probeBits(
        [&](const std::string& p) { return registry.score(ids[v], p).bits; });
    EXPECT_EQ(bits, referenceBits[v]);
  }
}

// ----------------------------------------------------------- observability

TEST(GrammarRegistryTest, TenantInfoAndStatsReportTraffic) {
  GrammarRegistryConfig cfg;
  cfg.rootDir = scratchDir("info");
  GrammarRegistry registry(cfg);
  registry.addTenant("zh", tenantGrammar(0));
  registry.addTenant("en", tenantGrammar(1));

  (void)registry.score("zh", "woaini1314");
  (void)registry.score("zh", "woaini1314");  // second hit -> cache
  (void)registry.scoreBatch("en", probes());
  registry.update("en", "password1", 2);

  const auto infos = registry.tenants();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].id, "en");
  EXPECT_EQ(infos[1].id, "zh");
  EXPECT_TRUE(infos[0].resident);
  EXPECT_TRUE(infos[1].resident);
  // Counters are per password / per occurrence, not per call.
  EXPECT_EQ(infos[0].routedScores, probes().size());
  EXPECT_EQ(infos[0].routedUpdates, 2u);
  EXPECT_EQ(infos[1].routedScores, 2u);
  EXPECT_EQ(infos[1].coldLoads, 1u);
  EXPECT_GT(infos[1].residentBytes, 0u);
  EXPECT_EQ(infos[1].logGenerations, 1u);
  EXPECT_GT(infos[1].cacheHitRate, 0.0);
  EXPECT_GT(infos[1].lastTouch, 0u);

  const auto stats = registry.stats();
  EXPECT_EQ(stats.tenants, 2u);
  EXPECT_EQ(stats.resident, 2u);
  EXPECT_EQ(stats.routedScores, 2u + probes().size());
  EXPECT_EQ(stats.routedUpdates, 2u);
  EXPECT_EQ(stats.coldLoads, 2u);
  EXPECT_EQ(stats.residentBytes, registry.residentBytes());
}

}  // namespace
}  // namespace fpsm
