#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "corpus/dataset.h"
#include "meters/ideal/ideal.h"
#include "meters/keepsm/keepsm.h"
#include "meters/markov/markov.h"
#include "meters/nist/nist.h"
#include "meters/pcfg/pcfg.h"
#include "meters/segment_table.h"
#include "meters/zxcvbn/adjacency.h"
#include "meters/zxcvbn/matching.h"
#include "meters/zxcvbn/zxcvbn.h"
#include "util/error.h"
#include "util/rng.h"

namespace fpsm {
namespace {

// -------------------------------------------------------------- SegmentTable

TEST(SegmentTable, CountsAndProbabilities) {
  SegmentTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.probability("x"), 0.0);
  t.add("abc", 3);
  t.add("def", 1);
  t.add("abc", 1);
  EXPECT_EQ(t.total(), 5u);
  EXPECT_EQ(t.distinct(), 2u);
  EXPECT_EQ(t.count("abc"), 4u);
  EXPECT_NEAR(t.probability("abc"), 0.8, 1e-12);
  EXPECT_EQ(t.probability("zzz"), 0.0);
}

TEST(SegmentTable, SortedDescAndCacheInvalidation) {
  SegmentTable t;
  t.add("low", 1);
  t.add("high", 5);
  auto sorted = t.sortedDesc();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].form, "high");
  t.add("low", 10);  // invalidates cache
  sorted = t.sortedDesc();
  EXPECT_EQ(sorted[0].form, "low");
}

TEST(SegmentTable, SampleMatchesDistribution) {
  SegmentTable t;
  t.add("a", 8);
  t.add("b", 2);
  Rng rng(3);
  int a = 0;
  for (int i = 0; i < 20000; ++i) {
    if (t.sample(rng) == "a") ++a;
  }
  EXPECT_NEAR(a / 20000.0, 0.8, 0.02);
  SegmentTable empty;
  EXPECT_THROW(empty.sample(rng), InvalidArgument);
}

// ---------------------------------------------------------------------- PCFG

TEST(Pcfg, SegmentationMatchesPaperExamples) {
  // p@ssw0rd -> L1 S1 L3 D1 L2 (paper Sec. IV-C)
  const auto segs = segmentLDS("p@ssw0rd");
  ASSERT_EQ(segs.size(), 5u);
  EXPECT_EQ(structureKey("p@ssw0rd", segs), "L1S1L3D1L2");
  EXPECT_EQ(structureKey("Password123", segmentLDS("Password123")), "L8D3");
  EXPECT_EQ(structureKey("123qwe123qwe", segmentLDS("123qwe123qwe")),
            "D3L3D3L3");
  EXPECT_TRUE(segmentLDS("").empty());
}

Dataset pcfgCorpus() {
  Dataset ds;
  ds.add("password123", 6);
  ds.add("letmein123", 2);
  ds.add("monkey99", 2);
  ds.add("abc!", 1);
  return ds;
}

TEST(Pcfg, ProbabilityIsStructureTimesSegments) {
  PcfgModel m;
  m.train(pcfgCorpus());
  // Structures: L8D3 x6, L7D3 x2, L6D2 x2, L3S1 x1 (total 11).
  // password123: P(L8D3)=6/11, P(L8->password)=1 (only L8), P(D3->123)=1
  // (123 appears in both L8D3 and L7D3 rows: counts 6+2 of 8 total D3).
  const double expected =
      std::log2(6.0 / 11.0) + std::log2(1.0) + std::log2(8.0 / 8.0);
  EXPECT_NEAR(m.log2Prob("password123"), expected, 1e-9);
  // Cross-product generalization: "monkey123" was never seen but its parts
  // were -> finite probability (L6D3 structure unseen though -> -inf).
  EXPECT_EQ(m.log2Prob("monkey123"), -std::numeric_limits<double>::infinity());
  // letmein99: L7D2 structure unseen -> -inf.
  EXPECT_TRUE(std::isinf(m.log2Prob("letmein99")));
}

TEST(Pcfg, CrossProductGeneralizes) {
  Dataset ds;
  ds.add("password1", 3);
  ds.add("monkey12", 1);  // L6D2
  ds.add("dragon1", 1);   // L6D1
  PcfgModel m;
  m.train(ds);
  // "dragon1" and "monkey1"? monkey1 = L6D1 structure seen; L6 has monkey &
  // dragon; D1 has 1. So monkey1 gets finite probability though unseen.
  EXPECT_TRUE(std::isfinite(m.log2Prob("monkey1")));
}

TEST(Pcfg, NotTrainedThrows) {
  PcfgModel m;
  EXPECT_THROW(m.log2Prob("abc"), NotTrained);
  Rng rng(1);
  EXPECT_THROW(m.sample(rng), NotTrained);
}

TEST(Pcfg, SampleScoresFinite) {
  PcfgModel m;
  m.train(pcfgCorpus());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::string s = m.sample(rng);
    EXPECT_TRUE(std::isfinite(m.log2Prob(s))) << s;
  }
}

TEST(Pcfg, SampleEmpiricalMatchesModel) {
  PcfgModel m;
  m.train(pcfgCorpus());
  Rng rng(7);
  int hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (m.sample(rng) == "password123") ++hits;
  }
  const double expected = std::exp2(m.log2Prob("password123"));
  EXPECT_NEAR(hits / static_cast<double>(kDraws), expected, 0.02);
}

TEST(Pcfg, EnumerationDecreasingAndComplete) {
  PcfgModel m;
  m.train(pcfgCorpus());
  std::vector<std::string> guesses;
  std::vector<double> lps;
  m.enumerateGuesses(1000, [&](std::string_view g, double lp) {
    guesses.emplace_back(g);
    lps.push_back(lp);
    return true;
  });
  ASSERT_FALSE(guesses.empty());
  for (std::size_t i = 1; i < lps.size(); ++i) {
    EXPECT_LE(lps[i], lps[i - 1] + 1e-9);
  }
  // No duplicates (PCFG derivations are unique per string).
  auto sorted = guesses;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // All trained passwords are enumerated, and the emitted log-probability
  // equals the scorer's.
  for (const auto& e : pcfgCorpus().sortedByFrequency()) {
    const auto it = std::find(guesses.begin(), guesses.end(), e.password);
    ASSERT_NE(it, guesses.end()) << e.password;
    const auto idx = static_cast<std::size_t>(it - guesses.begin());
    EXPECT_NEAR(lps[idx], m.log2Prob(e.password), 1e-9);
  }
  // First guess is the modal password.
  EXPECT_EQ(guesses.front(), "password123");
}

TEST(Pcfg, EnumerationRespectsCallbackStop) {
  PcfgModel m;
  m.train(pcfgCorpus());
  int seen = 0;
  m.enumerateGuesses(1000, [&](std::string_view, double) {
    return ++seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST(Pcfg, ExternalDictionaryModeScoresUniformly) {
  PcfgConfig cfg;
  cfg.letterModel = PcfgLetterModel::ExternalDictionary;
  PcfgModel weir(cfg);
  EXPECT_EQ(weir.name(), "PCFG-PSM(weir09)");
  Dataset ds;
  ds.add("password1", 9);  // L8 D1
  ds.add("sunshine2", 1);
  weir.train(ds);
  // Both L8 dictionary words get the SAME letter probability (uniform),
  // so the score difference comes only from the D1 segment — none here.
  EXPECT_NEAR(weir.log2Prob("password1"), weir.log2Prob("sunshine2") +
                  std::log2(weir.segmentProbability(SegmentClass::Digit, 1,
                                                    "1") /
                            weir.segmentProbability(SegmentClass::Digit, 1,
                                                    "2")),
              1e-9);
  // The learned model separates them by training frequency.
  PcfgModel learned;
  learned.train(ds);
  EXPECT_GT(learned.log2Prob("password1"), learned.log2Prob("sunshine2"));
  // Words outside the external dictionary score zero in Weir'09 mode.
  weir.update("qzkfjw1", 1);
  EXPECT_TRUE(std::isinf(weir.log2Prob("qzkfjw1")));
  // Scoring-only mode: sampling/enumeration are explicit errors.
  Rng rng(2);
  EXPECT_THROW(weir.sample(rng), InvalidArgument);
  EXPECT_THROW(weir.enumerateGuesses(10, [](std::string_view, double) {
    return true;
  }),
               InvalidArgument);
}

TEST(Pcfg, UpdateShiftsProbabilities) {
  PcfgModel m;
  m.train(pcfgCorpus());
  const double before = m.log2Prob("monkey99");
  for (int i = 0; i < 50; ++i) m.update("monkey99");
  EXPECT_GT(m.log2Prob("monkey99"), before);
}

// -------------------------------------------------------------------- Markov

Dataset markovCorpus() {
  Dataset ds;
  ds.add("aaa", 10);
  ds.add("aab", 5);
  ds.add("abc123", 3);
  ds.add("password", 2);
  ds.add("zz9!", 1);
  return ds;
}

class MarkovSmoothingTest
    : public ::testing::TestWithParam<MarkovSmoothing> {};

TEST_P(MarkovSmoothingTest, ConditionalsNormalize) {
  MarkovConfig cfg;
  cfg.order = 3;
  cfg.smoothing = GetParam();
  MarkovModel m(cfg);
  m.train(markovCorpus());
  // For several contexts (seen and unseen), the conditional distribution
  // over the 96 predicted symbols must sum to 1.
  const std::vector<std::string> contexts = {
      std::string(3, MarkovModel::kStart),
      std::string(2, MarkovModel::kStart) + "a",
      "aaa", "pas", "xyz",  // xyz unseen
  };
  for (const auto& ctx : contexts) {
    double sum = 0.0;
    for (int c = 0x20; c <= 0x7e; ++c) {
      sum += m.conditionalProb(ctx, static_cast<char>(c));
    }
    sum += m.conditionalProb(ctx, MarkovModel::kEnd);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "context: " << ctx;
  }
}

TEST_P(MarkovSmoothingTest, SampledStringsScoreFinite) {
  MarkovConfig cfg;
  cfg.order = 2;
  cfg.smoothing = GetParam();
  MarkovModel m(cfg);
  m.train(markovCorpus());
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const std::string s = m.sample(rng);
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(std::isfinite(m.log2Prob(s)) ||
                GetParam() == MarkovSmoothing::GoodTuring)
        << s;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmoothings, MarkovSmoothingTest,
                         ::testing::Values(MarkovSmoothing::Backoff,
                                           MarkovSmoothing::Laplace,
                                           MarkovSmoothing::GoodTuring));

TEST(Markov, TrainedHeadIsMostProbable) {
  MarkovModel m;
  m.train(markovCorpus());
  EXPECT_GT(m.log2Prob("aaa"), m.log2Prob("password"));
  EXPECT_GT(m.log2Prob("password"), m.log2Prob("qQ[!7e"));
}

TEST(Markov, GeneralizesToUnseenStrings) {
  MarkovModel m;
  m.train(markovCorpus());
  // Never-seen string still gets finite probability (the smoothing point).
  EXPECT_TRUE(std::isfinite(m.log2Prob("aba")));
}

TEST(Markov, SampleEmpiricalMatchesModel) {
  MarkovConfig cfg;
  cfg.order = 3;
  MarkovModel m(cfg);
  Dataset ds;
  ds.add("ab", 9);
  ds.add("cd", 1);
  m.train(ds);
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (m.sample(rng) == "ab") ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws),
              std::exp2(m.log2Prob("ab")), 0.03);
}

TEST(Markov, EnumerationBandsAreDecreasing) {
  MarkovModel m;
  m.train(markovCorpus());
  std::vector<double> lps;
  std::vector<std::string> guesses;
  m.enumerateGuesses(500, [&](std::string_view g, double lp) {
    lps.push_back(lp);
    guesses.emplace_back(g);
    return true;
  });
  ASSERT_GT(lps.size(), 10u);
  // Band ordering: each guess's band floor is non-increasing.
  for (std::size_t i = 1; i < lps.size(); ++i) {
    EXPECT_LE(std::ceil(lps[i]), std::ceil(lps[i - 1]) + 1e-9);
  }
  // Emitted log-probabilities match the scorer.
  for (std::size_t i = 0; i < guesses.size(); i += 7) {
    EXPECT_NEAR(m.log2Prob(guesses[i]), lps[i], 1e-9);
  }
  // No duplicates across bands.
  auto sorted = guesses;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Markov, ConfigValidation) {
  MarkovConfig bad;
  bad.order = 0;
  EXPECT_THROW(MarkovModel{bad}, InvalidArgument);
  bad.order = 9;
  EXPECT_THROW(MarkovModel{bad}, InvalidArgument);
  MarkovConfig badD;
  badD.discount = 1.5;
  EXPECT_THROW(MarkovModel{badD}, InvalidArgument);
}

// ---------------------------------------------------------------------- NIST

TEST(Nist, LengthEntropySchedule) {
  NistMeter m;
  // 1 char, no bonuses except dictionary (+6 since not in dict).
  EXPECT_NEAR(m.strengthBits("^"), 4.0 + 6.0, 1e-9);
  // 8 lower-case chars not in dictionary: 4 + 7*2 + 6 = 24.
  EXPECT_NEAR(m.strengthBits("qjwmvbxk"), 4.0 + 14.0 + 6.0, 1e-9);
  // 10 chars: 4 + 14 + 2*1.5 + 6 = 27.
  EXPECT_NEAR(m.strengthBits("qjwmvbxkpz"), 4.0 + 14.0 + 3.0 + 6.0, 1e-9);
  // 22 chars: 4 + 14 + 18 + 2*1 = 38 (+0 dictionary at >= 20).
  EXPECT_NEAR(m.strengthBits(std::string(22, 'j')), 4 + 14 + 18 + 2, 1e-9);
}

TEST(Nist, CompositionBonus) {
  NistMeter m;
  // Same length, one with upper+digit -> +6.
  const double plain = m.strengthBits("qjwmvbxk");
  const double mixed = m.strengthBits("Qjwmvbx7");
  EXPECT_NEAR(mixed - plain, 6.0, 1e-9);
}

TEST(Nist, DictionaryCheckRemovesBonus) {
  NistMeter m;
  EXPECT_TRUE(m.inDictionary("password"));
  EXPECT_TRUE(m.inDictionary("PASSWORD"));  // case-folded
  EXPECT_FALSE(m.inDictionary("qjwmvbxk"));
  EXPECT_NEAR(m.strengthBits("qjwmvbxk") - m.strengthBits("password"), 6.0,
              1e-9);
}

TEST(Nist, ExtraDictionaryFromDataset) {
  Dataset leak;
  leak.add("zq9mglorp", 2);
  NistMeter m(leak);
  EXPECT_TRUE(m.inDictionary("zq9mglorp"));
  NistMeter plain;
  EXPECT_FALSE(plain.inDictionary("zq9mglorp"));
}

// -------------------------------------------------------------------- KeePSM

TEST(Keepsm, PopularWordIsCheap) {
  KeepsmMeter m;
  // "password" is a top-ranked dictionary word; a random same-length string
  // costs ~8 * log2(26) bits.
  EXPECT_LT(m.strengthBits("password"), 10.0);
  EXPECT_GT(m.strengthBits("qjwmvbxk"), 30.0);
}

TEST(Keepsm, LeetAndCaseDecodedButCharged) {
  KeepsmMeter m;
  const double base = m.strengthBits("password");
  const double leet = m.strengthBits("p@ssw0rd");
  const double caps = m.strengthBits("Password");
  EXPECT_GT(leet, base);
  EXPECT_GT(caps, base);
  // Still far below bruteforce for the same length.
  EXPECT_LT(leet, 30.0);
}

TEST(Keepsm, RepetitionDetected) {
  KeepsmMeter m;
  // A repeated block costs far less than unstructured letters of the same
  // length. (Note "abcdefghijkl" would be a diff-sequence, also cheap, so
  // compare against a pattern-free string.)
  EXPECT_LT(m.strengthBits("abcabcabcabc"), m.strengthBits("azkqmwpxnvbd"));
  EXPECT_LT(m.strengthBits("aaaaaaaa"), 14.0);
}

TEST(Keepsm, NumberRunCheaperThanDigitsBruteforce) {
  KeepsmMeter m;
  // 2 + log2(123457) ~= 19 vs 6*log2(10) ~= 19.9 — and for leading zeros
  // the value shrinks further.
  EXPECT_LT(m.strengthBits("000001"), 6 * std::log2(10.0));
}

TEST(Keepsm, DiffSequenceDetected) {
  KeepsmMeter m;
  EXPECT_LT(m.strengthBits("abcdefgh"), m.strengthBits("aqzwsxed"));
}

TEST(Keepsm, EmptyIsZero) {
  KeepsmMeter m;
  EXPECT_EQ(m.strengthBits(""), 0.0);
}

// -------------------------------------------------------------------- zxcvbn

TEST(ZxAdjacency, QwertyNeighbours) {
  const auto& g = KeyboardGraph::qwerty();
  EXPECT_TRUE(g.adjacent('q', 'w'));
  EXPECT_TRUE(g.adjacent('q', 'a'));
  EXPECT_TRUE(g.adjacent('s', 'w'));
  EXPECT_FALSE(g.adjacent('q', 'z'));
  EXPECT_FALSE(g.adjacent('q', 'p'));
  // Shifted characters resolve to the same key.
  EXPECT_TRUE(g.adjacent('!', 'q'));
  EXPECT_TRUE(g.isShifted('!'));
  EXPECT_FALSE(g.isShifted('1'));
  EXPECT_GT(g.averageDegree(), 3.0);
  EXPECT_LT(g.averageDegree(), 7.0);
}

TEST(ZxAdjacency, KeypadNeighbours) {
  const auto& g = KeyboardGraph::keypad();
  EXPECT_TRUE(g.adjacent('5', '2'));
  EXPECT_TRUE(g.adjacent('1', '5'));  // diagonal
  EXPECT_FALSE(g.adjacent('1', '9'));
  EXPECT_FALSE(g.contains('a'));
}

TEST(ZxMatching, DictionaryFindsEmbeddedWords) {
  const auto& dict = RankedDictionary::embedded();
  const auto matches = matchDictionary("xxpasswordyy", dict);
  const auto it =
      std::find_if(matches.begin(), matches.end(),
                   [](const ZxMatch& m) { return m.token == "password"; });
  ASSERT_NE(it, matches.end());
  EXPECT_EQ(it->i, 2u);
  EXPECT_EQ(it->j, 9u);
}

TEST(ZxMatching, UppercaseEntropyFormula) {
  EXPECT_EQ(uppercaseEntropy("password"), 0.0);
  EXPECT_EQ(uppercaseEntropy("Password"), 1.0);
  EXPECT_EQ(uppercaseEntropy("passworD"), 1.0);
  EXPECT_EQ(uppercaseEntropy("PASSWORD"), 1.0);
  EXPECT_GT(uppercaseEntropy("PaSsWoRd"), 1.0);
}

TEST(ZxMatching, L33tRequiresSubstitution) {
  const auto& dict = RankedDictionary::embedded();
  const auto leet = matchL33t("p@ssw0rd", dict);
  const auto it =
      std::find_if(leet.begin(), leet.end(),
                   [](const ZxMatch& m) { return m.token == "p@ssw0rd"; });
  ASSERT_NE(it, leet.end());
  EXPECT_GE(it->entropy, 2.0);  // rank + at least 2 subs
  // Plain words are not reported by the l33t matcher.
  for (const auto& m : matchL33t("password", dict)) {
    EXPECT_NE(m.token, "password");
  }
}

TEST(ZxMatching, SpatialFindsWalks) {
  const auto matches = matchSpatial("qwertyuiop");
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].i, 0u);
  EXPECT_EQ(matches[0].j, 9u);
  EXPECT_TRUE(matchSpatial("qa!zjm").empty());
}

TEST(ZxMatching, RepeatSequenceDigitsYearDate) {
  EXPECT_EQ(matchRepeat("aaab").size(), 1u);
  EXPECT_TRUE(matchRepeat("abab").empty());
  ASSERT_EQ(matchSequence("abcdef").size(), 1u);
  EXPECT_EQ(matchSequence("abcdef")[0].token, "abcdef");
  ASSERT_EQ(matchSequence("987x").size(), 1u);
  EXPECT_EQ(matchDigits("pw1234x").size(), 1u);
  ASSERT_FALSE(matchYear("born1987ok").empty());
  EXPECT_TRUE(matchYear("x1899x").empty());
  EXPECT_FALSE(matchDate("31121990").empty());
  EXPECT_FALSE(matchDate("122590").empty());
}

TEST(Zxcvbn, OrdersPasswordsSensibly) {
  ZxcvbnMeter m;
  const double weak = m.strengthBits("password");
  const double medium = m.strengthBits("password123");
  const double strong = m.strengthBits("zQ9$mG2#pL");
  EXPECT_LT(weak, medium);
  EXPECT_LT(medium, strong);
  EXPECT_LT(weak, 5.0);
  EXPECT_GT(strong, 40.0);
}

TEST(Zxcvbn, CoverIsReconstructed) {
  ZxcvbnMeter m;
  const auto a = m.analyze("password1987");
  ASSERT_FALSE(a.cover.empty());
  // Expect a dictionary match for password and a year match.
  bool sawDict = false, sawYear = false;
  for (const auto& match : a.cover) {
    if (match.kind == MatchKind::Dictionary && match.token == "password") {
      sawDict = true;
    }
    if (match.kind == MatchKind::Year) sawYear = true;
  }
  EXPECT_TRUE(sawDict);
  EXPECT_TRUE(sawYear);
}

TEST(Zxcvbn, TrainedDictionaryLowersScore) {
  Dataset leak;
  leak.add("zq9mglorp", 5);
  ZxcvbnMeter plain;
  ZxcvbnMeter tuned(leak);
  EXPECT_LT(tuned.strengthBits("zq9mglorp"), plain.strengthBits("zq9mglorp"));
}

// --------------------------------------------------------------------- Ideal

TEST(Ideal, RanksByFrequency) {
  Dataset ds;
  ds.add("first", 10);
  ds.add("second", 5);
  ds.add("third", 5);
  ds.add("fourth", 1);
  IdealMeter m(ds);
  EXPECT_EQ(m.guessNumber("first"), 1u);
  EXPECT_EQ(m.guessNumber("second"), 2u);
  EXPECT_EQ(m.guessNumber("third"), 2u);  // tie shares block rank
  EXPECT_EQ(m.guessNumber("fourth"), 4u);
  EXPECT_EQ(m.guessNumber("absent"), 0u);
  EXPECT_NEAR(m.log2Prob("first"), std::log2(10.0 / 21.0), 1e-12);
  EXPECT_TRUE(std::isinf(m.log2Prob("absent")));
}

TEST(Ideal, EnumerationFollowsFrequency) {
  Dataset ds;
  ds.add("a", 3);
  ds.add("b", 2);
  ds.add("c", 1);
  IdealMeter m(ds);
  std::vector<std::string> got;
  m.enumerateGuesses(2, [&](std::string_view g, double) {
    got.emplace_back(g);
    return true;
  });
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(Ideal, RejectsEmptySample) {
  Dataset empty;
  EXPECT_THROW(IdealMeter{empty}, InvalidArgument);
}

}  // namespace
}  // namespace fpsm
