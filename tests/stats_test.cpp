#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/correlation.h"
#include "stats/edit_distance.h"
#include "stats/rank.h"
#include "stats/smoothing.h"
#include "stats/zipf.h"
#include "util/error.h"
#include "util/rng.h"

namespace fpsm {
namespace {

// ----------------------------------------------------------------------- rank

TEST(Rank, SimpleRanks) {
  const std::vector<double> v = {30, 10, 20};
  const auto r = averageRanks(v);
  EXPECT_EQ(r, (std::vector<double>{3, 1, 2}));
}

TEST(Rank, TiesGetAveragePositions) {
  const std::vector<double> v = {10, 20, 20, 30};
  const auto r = averageRanks(v);
  EXPECT_EQ(r, (std::vector<double>{1, 2.5, 2.5, 4}));
}

TEST(Rank, AllTied) {
  const std::vector<double> v = {5, 5, 5};
  const auto r = averageRanks(v);
  EXPECT_EQ(r, (std::vector<double>{2, 2, 2}));
}

TEST(Rank, DescendingOrderIsStable) {
  const std::vector<double> v = {1, 3, 3, 2};
  const auto order = descendingOrder(v);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 3, 0}));
}

// ----------------------------------------------------------------- correlation

TEST(Correlation, PearsonPerfect) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> yneg = y;
  std::reverse(yneg.begin(), yneg.end());
  EXPECT_NEAR(pearson(x, yneg), -1.0, 1e-12);
}

TEST(Correlation, PearsonDegenerate) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Correlation, SpearmanInvariantUnderMonotoneTransform) {
  const std::vector<double> x = {0.1, 5.0, 2.0, 9.0, 3.3};
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::exp(x[i]);
  EXPECT_NEAR(spearmanRho(x, y), 1.0, 1e-12);
}

TEST(Correlation, KendallPerfectAgreementAndReversal) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {10, 20, 30, 40, 50};
  EXPECT_NEAR(kendallTauB(x, y), 1.0, 1e-12);
  std::vector<double> rev = y;
  std::reverse(rev.begin(), rev.end());
  EXPECT_NEAR(kendallTauB(x, rev), -1.0, 1e-12);
}

TEST(Correlation, KendallKnownSmallCase) {
  // Hand-computed: x = 1,2,3; y = 1,3,2 -> pairs: (1,2)C,(1,3)C,(2,3)D
  // tau = (2-1)/3 = 1/3.
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 3, 2};
  EXPECT_NEAR(kendallTauB(x, y), 1.0 / 3.0, 1e-12);
}

TEST(Correlation, KendallAllTiedReturnsZero) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(kendallTauB(x, y), 0.0);
}

TEST(Correlation, SizeMismatchThrows) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_THROW(kendallTauB(x, y), InvalidArgument);
  EXPECT_THROW(spearmanRho(x, y), InvalidArgument);
  EXPECT_THROW(pearson(x, y), InvalidArgument);
}

// Brute-force tau-b reference for the property sweep.
double tauBruteForce(const std::vector<double>& x,
                     const std::vector<double>& y) {
  const std::size_t n = x.size();
  long long concordant = 0, discordant = 0, tieX = 0, tieY = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0 && dy == 0) continue;
      if (dx == 0) { ++tieX; continue; }
      if (dy == 0) { ++tieY; continue; }
      if ((dx > 0) == (dy > 0)) ++concordant;
      else ++discordant;
    }
  }
  const double p = static_cast<double>(concordant);
  const double q = static_cast<double>(discordant);
  const double denom = std::sqrt((p + q + static_cast<double>(tieY)) *
                                 (p + q + static_cast<double>(tieX)));
  if (denom == 0) return 0.0;
  return (p - q) / denom;
}

class KendallProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KendallProperty, MatchesBruteForceWithTies) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.below(60);
    std::vector<double> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Small integer domain forces many ties.
      x[i] = static_cast<double>(rng.below(8));
      y[i] = static_cast<double>(rng.below(8));
    }
    EXPECT_NEAR(kendallTauB(x, y), tauBruteForce(x, y), 1e-10);
  }
}

TEST_P(KendallProperty, SymmetricInArguments) {
  Rng rng(GetParam() + 1000);
  const std::size_t n = 50;
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform();
    y[i] = static_cast<double>(rng.below(5));
  }
  EXPECT_NEAR(kendallTauB(x, y), kendallTauB(y, x), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KendallProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 21, 42));

TEST(Correlation, CurveClampsAndDedups) {
  std::vector<double> ref(100), cand(100);
  Rng rng(4);
  for (std::size_t i = 0; i < 100; ++i) {
    ref[i] = rng.uniform();
    cand[i] = ref[i] + 0.01 * rng.uniform();
  }
  const std::vector<std::size_t> ks = {10, 50, 1000, 2000};
  const auto curve = correlationCurve(ref, cand, ks, /*useKendall=*/true);
  ASSERT_EQ(curve.size(), 3u);  // 1000 and 2000 both clamp to 100
  EXPECT_EQ(curve[0].k, 10u);
  EXPECT_EQ(curve[1].k, 50u);
  EXPECT_EQ(curve[2].k, 100u);
  for (const auto& p : curve) EXPECT_GT(p.value, 0.9);
}

TEST(Correlation, LogSpacedKs) {
  const auto ks = logSpacedKs(10, 10000, 7);
  ASSERT_GE(ks.size(), 2u);
  EXPECT_EQ(ks.front(), 10u);
  EXPECT_EQ(ks.back(), 10000u);
  EXPECT_TRUE(std::is_sorted(ks.begin(), ks.end()));
}

// ------------------------------------------------------------------ smoothing

TEST(Smoothing, AdditiveBasics) {
  // count 2 of total 10, vocab 5, delta 1: (2+1)/(10+5) = 0.2
  EXPECT_NEAR(additiveSmoothed(2, 10, 5, 1.0), 0.2, 1e-12);
  EXPECT_THROW(additiveSmoothed(1, 1, 0), InvalidArgument);
  EXPECT_THROW(additiveSmoothed(1, 1, 2, -0.5), InvalidArgument);
}

TEST(Smoothing, AdditiveNormalizes) {
  // Sum over a closed vocab must be 1.
  const std::vector<std::uint64_t> counts = {3, 0, 7, 1};
  double sum = 0;
  for (auto c : counts) sum += additiveSmoothed(c, 11, counts.size(), 0.7);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Smoothing, GoodTuringAdjustsHeadKeepsTail) {
  // counts: three singletons, two doubletons, one five.
  const std::vector<std::uint64_t> counts = {1, 1, 1, 2, 2, 5};
  GoodTuring gt(counts);
  EXPECT_EQ(gt.total(), 12u);
  EXPECT_NEAR(gt.unseenMass(), 3.0 / 12.0, 1e-12);
  // c*=1: (1+1)*N2/N1 = 2*2/3
  EXPECT_NEAR(gt.adjustedCount(1), 4.0 / 3.0, 1e-12);
  // N3 == 0 -> raw count kept for c=2; c=5 sparse -> raw.
  EXPECT_NEAR(gt.adjustedCount(2), 2.0, 1e-12);
  EXPECT_NEAR(gt.adjustedCount(5), 5.0, 1e-12);
  EXPECT_EQ(gt.adjustedCount(0), 0.0);
}

TEST(Smoothing, GoodTuringRejectsBadInput) {
  const std::vector<std::uint64_t> zero = {1, 0};
  EXPECT_THROW(GoodTuring{zero}, InvalidArgument);
  const std::vector<std::uint64_t> none;
  EXPECT_THROW(GoodTuring{none}, InvalidArgument);
}

// -------------------------------------------------------------- edit distance

TEST(EditDistance, KnownCases) {
  EXPECT_EQ(editDistance("", ""), 0u);
  EXPECT_EQ(editDistance("abc", ""), 3u);
  EXPECT_EQ(editDistance("", "abc"), 3u);
  EXPECT_EQ(editDistance("abc", "abc"), 0u);
  EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(editDistance("password", "p@ssw0rd"), 2u);
  EXPECT_EQ(editDistance("password", "password1"), 1u);
  EXPECT_EQ(editDistance("abc", "cba"), 2u);
}

class EditDistanceProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EditDistanceProperty, MetricAxioms) {
  Rng rng(GetParam());
  auto randomWord = [&] {
    std::string w;
    const auto len = rng.below(10);
    for (std::uint64_t i = 0; i < len; ++i) {
      w.push_back(static_cast<char>('a' + rng.below(4)));
    }
    return w;
  };
  for (int trial = 0; trial < 30; ++trial) {
    const std::string a = randomWord();
    const std::string b = randomWord();
    const std::string c = randomWord();
    EXPECT_EQ(editDistance(a, b), editDistance(b, a));          // symmetry
    EXPECT_EQ(editDistance(a, a), 0u);                          // identity
    EXPECT_LE(editDistance(a, c),
              editDistance(a, b) + editDistance(b, c));         // triangle
    // Bounded by the longer length.
    EXPECT_LE(editDistance(a, b), std::max(a.size(), b.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperty,
                         ::testing::Values(3, 14, 159));

// ----------------------------------------------------------------------- zipf

TEST(Zipf, SamplerPrefersLowRanks) {
  Rng rng(8);
  ZipfSampler z(100, 1.0);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 50000; ++i) ++hits[z(rng)];
  EXPECT_GT(hits[0], hits[9]);
  EXPECT_GT(hits[9], hits[99]);
  // P(rank 0) = 1 / H_100 ~= 0.1928
  EXPECT_NEAR(hits[0] / 50000.0, 0.1928, 0.02);
}

TEST(Zipf, FitRecoversExponent) {
  // Exact power law f(r) = 1e6 / r^0.9
  std::vector<std::uint64_t> freqs;
  for (int r = 1; r <= 500; ++r) {
    freqs.push_back(static_cast<std::uint64_t>(
        1e6 / std::pow(static_cast<double>(r), 0.9)));
  }
  const auto fit = fitZipf(freqs);
  EXPECT_NEAR(fit.exponent, 0.9, 0.02);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(Zipf, FitRejectsTinyInput) {
  const std::vector<std::uint64_t> one = {5};
  EXPECT_THROW(fitZipf(one), InvalidArgument);
}

}  // namespace
}  // namespace fpsm
