// Test battery for the .fpsmb flat binary grammar artifact (src/artifact):
//
//   * corruption battery — every bit flip, truncation, and targeted field
//     tamper must surface as a typed ArtifactError, never a crash, hang,
//     or silent mis-load (run under asan/ubsan via the `artifact` label);
//   * differential tests — FlatTrieView agrees with the pointer Trie on
//     every traversal query, and full-meter scores from a compiled
//     artifact are bit-identical to the grammar they were compiled from;
//   * round-trip properties — binary round trips are byte-identical and
//     the text form survives a text -> binary -> text cycle unchanged;
//   * a golden fixture pinning the on-disk encoding across refactors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "artifact/checksum.h"
#include "artifact_tamper.h"
#include "core/fuzzy_psm.h"
#include "serve/meter_service.h"
#include "trie/flat_trie.h"
#include "trie/trie.h"
#include "util/chars.h"
#include "util/rng.h"

namespace fpsm {
namespace {

using Bytes = std::vector<std::byte>;

// ------------------------------------------------------------ grammar fixtures

/// Small deterministic grammar exercising every production type: trie
/// matches, capitalization, leet, the reverse rule, and L/D/S fallback.
FuzzyPsm smallGrammar() {
  FuzzyConfig cfg;
  cfg.matchReverse = true;
  FuzzyPsm psm(cfg);
  for (const char* w :
       {"password", "dragon", "monkey", "shadow", "master", "qwerty"}) {
    psm.addBaseWord(w);
  }
  psm.update("password1", 5);
  psm.update("Dr@gon99", 2);
  psm.update("drowssap", 1);
  psm.update("m0nkey!", 3);
  psm.update("abc123", 4);
  psm.update("Shadow2020", 1);
  return psm;
}

/// Randomized trained grammar (same family as serialization_fuzz_test):
/// random config, random base dictionary, and training passwords mixing
/// exact/capitalized/leet/reversed/suffixed variants with fallback spans.
FuzzyPsm randomGrammar(Rng& rng) {
  FuzzyConfig cfg;
  cfg.matchReverse = rng.chance(0.5);
  cfg.retryTrieInsideRuns = rng.chance(0.3);
  cfg.transformationPrior = rng.chance(0.5) ? 0.5 : 0.0;
  FuzzyPsm psm(cfg);

  const std::string letters = "abcdefgiostz";
  auto randomWord = [&](std::size_t minLen, std::size_t maxLen) {
    std::string w;
    const std::size_t len = minLen + rng.below(maxLen - minLen + 1);
    for (std::size_t i = 0; i < len; ++i) {
      w.push_back(letters[rng.below(letters.size())]);
    }
    return w;
  };

  std::vector<std::string> baseWords;
  const std::size_t nBase = 8 + rng.below(16);
  for (std::size_t i = 0; i < nBase; ++i) {
    baseWords.push_back(randomWord(3, 9));
    psm.addBaseWord(baseWords.back());
  }
  const std::size_t nTraining = 40 + rng.below(60);
  for (std::size_t i = 0; i < nTraining; ++i) {
    std::string pw;
    if (rng.chance(0.7)) {
      pw = baseWords[rng.below(baseWords.size())];
      if (rng.chance(0.3)) pw[0] = toUpper(pw[0]);
      for (char& c : pw) {
        if (rng.chance(0.15)) {
          if (const auto partner = leetPartner(c)) c = *partner;
        }
      }
      if (rng.chance(0.25)) std::reverse(pw.begin(), pw.end());
      if (rng.chance(0.5)) pw += std::to_string(rng.below(1000));
    } else {
      pw = randomWord(3, 8);
      if (rng.chance(0.4)) pw += std::to_string(rng.below(10000));
      if (rng.chance(0.2)) pw += "!";
    }
    psm.update(pw, 1 + rng.below(9));
  }
  return psm;
}

// ----------------------------------------------------------- tamper utilities
// Shared with the generation-log crash-recovery battery; see
// tests/artifact_tamper.h for readU64/writeU32/writeU64/kPrelude/
// repairChecksums/expectRejected/expectRejectedAs.

using test_tamper::expectRejected;
using test_tamper::expectRejectedAs;
using test_tamper::kPrelude;
using test_tamper::readU64;
using test_tamper::repairChecksums;
using test_tamper::writeU32;
using test_tamper::writeU64;

// ----------------------------------------------------------------- happy path

TEST(Artifact, CompilesAndLoadsFromBytes) {
  const FuzzyPsm psm = smallGrammar();
  const auto artifact = GrammarArtifact::fromBytes(compileArtifact(psm));
  EXPECT_EQ(artifact->formatVersion(), kArtifactVersion);
  EXPECT_FALSE(artifact->memoryMapped());
  ASSERT_EQ(artifact->sections().size(), kArtifactSectionCount);
  EXPECT_EQ(artifact->sections()[0].bytes, 152u);  // fixed Config size
  const FlatGrammarView& g = artifact->grammar();
  EXPECT_TRUE(g.trained());
  EXPECT_EQ(g.trainedPasswords(), psm.trainedPasswords());
  EXPECT_EQ(g.baseWordCount(), 6u);
  EXPECT_EQ(g.baseDictionary().size(), psm.baseDictionary().size());
}

TEST(Artifact, OpensFromMmapFile) {
  const FuzzyPsm psm = smallGrammar();
  const std::string path = testing::TempDir() + "artifact_mmap_test.fpsmb";
  writeArtifactFile(psm, path);
  const auto artifact = GrammarArtifact::open(path);
  EXPECT_TRUE(artifact->memoryMapped());
  EXPECT_EQ(artifact->grammar().log2Prob("password1"),
            psm.log2Prob("password1"));
  std::remove(path.c_str());
}

TEST(Artifact, OpenMissingFileThrowsIoError) {
  try {
    (void)GrammarArtifact::open("/nonexistent/grammar.fpsmb");
    FAIL() << "open() of a missing file succeeded";
  } catch (const ArtifactError& e) {
    EXPECT_EQ(static_cast<int>(e.code()),
              static_cast<int>(ArtifactErrorCode::Io));
  }
}

TEST(Artifact, UntrainedGrammarRoundTrips) {
  FuzzyPsm psm;  // base words but no training
  psm.addBaseWord("password");
  const Bytes bytes = compileArtifact(psm);
  const auto artifact = GrammarArtifact::fromBytes(bytes);
  EXPECT_FALSE(artifact->grammar().trained());
  EXPECT_EQ(compileArtifact(FuzzyPsm::fromArtifact(*artifact)), bytes);
}

// ---------------------------------------------------------- corruption battery

TEST(ArtifactCorruption, TruncationAtEveryLength) {
  const Bytes full = compileArtifact(smallGrammar());
  // Every prefix length through the prelude, then a stride through the
  // payload (a payload truncation always breaks fileBytes first).
  for (std::size_t keep = 0; keep < full.size();
       keep += (keep < kPrelude ? 1 : 97)) {
    expectRejected(Bytes(full.begin(), full.begin() + keep), "truncation");
  }
}

TEST(ArtifactCorruption, BitFlipAtEveryPreludeOffset) {
  const Bytes full = compileArtifact(smallGrammar());
  ASSERT_GE(full.size(), kPrelude);
  for (std::size_t off = 0; off < kPrelude; ++off) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = full;
      mutated[off] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      expectRejected(std::move(mutated), "prelude bit flip");
    }
  }
}

TEST(ArtifactCorruption, BitFlipsAtSeededRandomPayloadOffsets) {
  const Bytes full = compileArtifact(smallGrammar());
  ASSERT_GT(full.size(), kPrelude);
  Rng rng(20260806);
  for (int i = 0; i < 256; ++i) {
    const std::size_t off =
        kPrelude + rng.below(full.size() - kPrelude);
    Bytes mutated = full;
    mutated[off] ^=
        std::byte{static_cast<unsigned char>(1u << rng.below(8))};
    expectRejected(std::move(mutated), "payload bit flip");
  }
}

TEST(ArtifactCorruption, TrailingGarbageRejected) {
  Bytes full = compileArtifact(smallGrammar());
  full.push_back(std::byte{0x42});
  expectRejected(std::move(full), "trailing byte");  // fileBytes mismatch
}

// Targeted tampering: each mutation repairs the checksums afterwards, so
// the load must be stopped by the *structural* validation layer it aims at.

TEST(ArtifactCorruption, WrongMagic) {
  Bytes b = compileArtifact(smallGrammar());
  writeU32(b, 0, 0x46444550u);
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadMagic, "magic");
}

TEST(ArtifactCorruption, UnsupportedVersion) {
  Bytes b = compileArtifact(smallGrammar());
  writeU32(b, 4, kArtifactVersion + 1);
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadVersion, "version");
}

TEST(ArtifactCorruption, ByteSwappedEndianTag) {
  Bytes b = compileArtifact(smallGrammar());
  writeU32(b, 8, 0x04030201u);
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadEndianness, "endian");
}

TEST(ArtifactCorruption, WrongSectionCount) {
  Bytes b = compileArtifact(smallGrammar());
  writeU32(b, 12, kArtifactSectionCount + 1);
  // No checksum repair: a different sectionCount changes the prelude
  // geometry, and the check must fire before the checksum is consulted.
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadHeader,
                   "section count");
}

TEST(ArtifactCorruption, LyingFileBytes) {
  Bytes b = compileArtifact(smallGrammar());
  writeU64(b, 16, b.size() + 8);
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::Truncated, "fileBytes");
}

TEST(ArtifactCorruption, NonzeroHeaderReserved) {
  Bytes b = compileArtifact(smallGrammar());
  writeU64(b, 24, 1);
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadHeader, "reserved");
}

TEST(ArtifactCorruption, SectionIdOutOfOrder) {
  Bytes b = compileArtifact(smallGrammar());
  writeU32(b, kArtifactHeaderBytes, 2);  // first entry claims id 2
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadSectionTable,
                   "section id");
}

TEST(ArtifactCorruption, OversizedTrieNodeCount) {
  const FuzzyPsm psm = smallGrammar();
  Bytes b = compileArtifact(psm);
  const auto artifact = GrammarArtifact::fromBytes(b);
  const std::size_t trieOff =
      static_cast<std::size_t>(artifact->sections()[2].offset);
  writeU32(b, trieOff, 0x7fffffffu);  // nodeCount far beyond the payload
  repairChecksums(b);
  expectRejected(std::move(b), "oversized node count");
}

TEST(ArtifactCorruption, EdgeTargetOutOfRange) {
  const FuzzyPsm psm = smallGrammar();
  Bytes b = compileArtifact(psm);
  const auto artifact = GrammarArtifact::fromBytes(b);
  const auto& trieSec = artifact->sections()[2];
  const std::size_t nodeCount = artifact->grammar().baseDictionary().nodeCount();
  // edgeTargets[0] sits after the 16-byte header and two u32[nodeCount].
  const std::size_t targetsOff =
      static_cast<std::size_t>(trieSec.offset) + 16 + 8 * nodeCount;
  writeU32(b, targetsOff, 0xfffffff0u);
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::OutOfRange,
                   "edge target");
}

TEST(ArtifactCorruption, EdgeTargetPointingAtRoot) {
  const FuzzyPsm psm = smallGrammar();
  Bytes b = compileArtifact(psm);
  const auto artifact = GrammarArtifact::fromBytes(b);
  const auto& trieSec = artifact->sections()[2];
  const std::size_t nodeCount = artifact->grammar().baseDictionary().nodeCount();
  const std::size_t targetsOff =
      static_cast<std::size_t>(trieSec.offset) + 16 + 8 * nodeCount;
  writeU32(b, targetsOff, 0);  // a cycle through the root
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::OutOfRange, "root edge");
}

TEST(ArtifactCorruption, UnknownConfigFlagBits) {
  Bytes b = compileArtifact(smallGrammar());
  const auto artifact = GrammarArtifact::fromBytes(b);
  const std::size_t cfgOff =
      static_cast<std::size_t>(artifact->sections()[0].offset);
  writeU32(b, cfgOff + 4, kArtifactKnownFlags + 1);
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadSection,
                   "unknown flags");
}

TEST(ArtifactCorruption, CapYesExceedsTotal) {
  Bytes b = compileArtifact(smallGrammar());
  const auto artifact = GrammarArtifact::fromBytes(b);
  const std::size_t cfgOff =
      static_cast<std::size_t>(artifact->sections()[0].offset);
  writeU64(b, cfgOff + 16, artifact->grammar().capTotal() + 1);  // capYes
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadSection,
                   "capYes > capTotal");
}

TEST(ArtifactCorruption, NonPrintableBaseWordByte) {
  Bytes b = compileArtifact(smallGrammar());
  const auto artifact = GrammarArtifact::fromBytes(b);
  const auto& sec = artifact->sections()[1];
  // Last byte of the section is inside the word pool.
  b[static_cast<std::size_t>(sec.offset + sec.bytes) - 1] = std::byte{0x01};
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadSection,
                   "non-printable base word");
}

TEST(ArtifactCorruption, StructureCountSumMismatch) {
  Bytes b = compileArtifact(smallGrammar());
  const auto artifact = GrammarArtifact::fromBytes(b);
  const std::size_t secOff =
      static_cast<std::size_t>(artifact->sections()[4].offset);
  // counts[0] lives after distinct/reserved/total/poolBytes (24 bytes).
  const std::uint64_t c0 = readU64(b, secOff + 24);
  writeU64(b, secOff + 24, c0 + 1);
  repairChecksums(b);
  expectRejectedAs(std::move(b), ArtifactErrorCode::BadSection,
                   "count sum");
}

// ------------------------------------------------------- trie differential

TEST(ArtifactDifferential, FlatTrieMatchesPointerTrieOn10kWords) {
  Rng rng(4242);
  const std::string alphabet = "abcdefgh01@$";
  auto randomWord = [&](std::size_t maxLen) {
    std::string w;
    const std::size_t len = 1 + rng.below(maxLen);
    for (std::size_t i = 0; i < len; ++i) {
      w.push_back(alphabet[rng.below(alphabet.size())]);
    }
    return w;
  };

  Trie trie;
  for (int i = 0; i < 2000; ++i) trie.insert(randomWord(10));
  const FlatTrie flat = FlatTrie::fromTrie(trie);
  const FlatTrieView view = flat.view();
  ASSERT_EQ(view.validate(), "");
  ASSERT_EQ(view.size(), trie.size());
  ASSERT_EQ(view.nodeCount(), trie.nodeCount());

  for (int i = 0; i < 10000; ++i) {
    const std::string probe = randomWord(12);
    ASSERT_EQ(view.contains(probe), trie.contains(probe)) << probe;
    const std::size_t from = rng.below(probe.size());
    ASSERT_EQ(view.longestPrefix(probe, from), trie.longestPrefix(probe, from))
        << probe << " from " << from;
  }

  // Node-by-node: same children, same terminal bits (ids are preserved).
  for (Trie::NodeId node = 0; node < trie.nodeCount(); ++node) {
    ASSERT_EQ(view.isTerminal(node), trie.isTerminal(node)) << node;
    for (const char c : alphabet) {
      ASSERT_EQ(view.child(node, c), trie.child(node, c))
          << "node " << node << " char " << c;
    }
  }
}

// ------------------------------------------------------ full-meter differential

TEST(ArtifactDifferential, ScoresBitIdenticalToSourceGrammar) {
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789@$!#";
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const FuzzyPsm psm = randomGrammar(rng);
    const auto artifact = GrammarArtifact::fromBytes(compileArtifact(psm));
    const FlatGrammarView& flat = artifact->grammar();
    for (int i = 0; i < 1000; ++i) {
      std::string pw;
      const std::size_t len = 1 + rng.below(14);
      for (std::size_t c = 0; c < len; ++c) {
        pw.push_back(alphabet[rng.below(alphabet.size())]);
      }
      // EXPECT_EQ, not NEAR: the artifact carries the identical integer
      // counts and the view replicates the float expressions operation for
      // operation (covers -infinity too).
      ASSERT_EQ(flat.log2Prob(pw), psm.log2Prob(pw))
          << "seed " << seed << " pw " << pw;
    }
  }
}

TEST(ArtifactDifferential, TransformationProbesBitIdentical) {
  const FuzzyPsm psm = smallGrammar();
  const auto artifact = GrammarArtifact::fromBytes(compileArtifact(psm));
  const FlatGrammarView& flat = artifact->grammar();
  // One probe per production type: exact, capitalized, leet, reversed,
  // fallback, and an unseen (−inf) password.
  for (const char* pw :
       {"password1", "Password1", "p@ssword1", "drowssap", "abc123",
        "Dr@gon99", "m0nkey!", "Shadow2020", "zzZZ##99xx"}) {
    EXPECT_EQ(flat.log2Prob(pw), psm.log2Prob(pw)) << pw;
    const FuzzyParse a = flat.parse(pw);
    const FuzzyParse b = psm.parse(pw);
    EXPECT_EQ(a.structure, b.structure) << pw;
    EXPECT_EQ(flat.derivationLog2Prob(a), psm.derivationLog2Prob(b)) << pw;
  }
}

// ------------------------------------------------------- round-trip properties

TEST(ArtifactRoundTrip, BinaryRoundTripIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const FuzzyPsm psm = randomGrammar(rng);
    const Bytes first = compileArtifact(psm);
    const auto artifact = GrammarArtifact::fromBytes(first);
    const FuzzyPsm back = FuzzyPsm::fromArtifact(*artifact);
    EXPECT_EQ(compileArtifact(back), first) << "seed " << seed;
  }
}

TEST(ArtifactRoundTrip, TextBinaryTextPreservesTextForm) {
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    Rng rng(seed);
    const FuzzyPsm psm = randomGrammar(rng);
    std::stringstream before;
    psm.save(before);
    const auto artifact = GrammarArtifact::fromBytes(compileArtifact(psm));
    std::stringstream after;
    FuzzyPsm::fromArtifact(*artifact).save(after);
    EXPECT_EQ(after.str(), before.str()) << "seed " << seed;
  }
}

TEST(ArtifactRoundTrip, SaveBinaryLoadBinaryStreams) {
  const FuzzyPsm psm = smallGrammar();
  std::stringstream stream;
  psm.saveBinary(stream);
  const FuzzyPsm back = FuzzyPsm::loadBinary(stream);
  EXPECT_EQ(back.log2Prob("password1"), psm.log2Prob("password1"));
  EXPECT_EQ(back.trainedPasswords(), psm.trainedPasswords());
}

// ------------------------------------------------------------- golden fixture

#ifdef FPSM_TEST_DATA_DIR
TEST(ArtifactGolden, EncodingMatchesCheckedInFixture) {
  const std::string path =
      std::string(FPSM_TEST_DATA_DIR) + "/golden_small.fpsmb";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden fixture " << path
                  << " — regenerate with: fuzzypsm compile";
  const std::string raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  Bytes onDisk(raw.size());
  std::memcpy(onDisk.data(), raw.data(), raw.size());

  // The fixture pins the v1 encoding: if this fails and the change is
  // intentional, bump kArtifactVersion and regenerate the fixture.
  EXPECT_EQ(compileArtifact(smallGrammar()), onDisk);

  const auto artifact = GrammarArtifact::open(path);
  EXPECT_EQ(artifact->grammar().log2Prob("password1"),
            smallGrammar().log2Prob("password1"));
}
#endif

// --------------------------------------------------------- serve integration

TEST(ArtifactServe, SnapshotFromArtifactScoresIdentically) {
  const FuzzyPsm psm = smallGrammar();
  const auto artifact = GrammarArtifact::fromBytes(compileArtifact(psm));
  const auto snap = GrammarSnapshot::fromArtifact(artifact, 7);
  EXPECT_TRUE(snap->artifactBacked());
  EXPECT_EQ(snap->generation(), 7u);
  EXPECT_EQ(snap->log2Prob("password1"), psm.log2Prob("password1"));
  EXPECT_THROW(snap->grammar(), Error);
}

TEST(ArtifactServe, MeterServiceColdStartsFromArtifact) {
  const FuzzyPsm psm = smallGrammar();
  const auto artifact = GrammarArtifact::fromBytes(compileArtifact(psm));
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(artifact, cfg);
  EXPECT_TRUE(service.snapshot()->artifactBacked());
  EXPECT_EQ(service.score("password1").bits, psm.strengthBits("password1"));

  // First update publish materializes the master grammar and folds the
  // queued occurrences; scores evolve exactly as with an owned grammar.
  FuzzyPsm expected = psm;
  expected.update("password1", 3);
  service.update("password1", 3);
  EXPECT_EQ(service.publishNow(), 1u);
  EXPECT_FALSE(service.snapshot()->artifactBacked());
  EXPECT_EQ(service.score("password1").bits,
            expected.strengthBits("password1"));
}

TEST(ArtifactServe, PublishFromArtifactKeepsPendingUpdates) {
  const FuzzyPsm first = smallGrammar();
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(first, cfg);

  service.update("qwerty12", 2);  // stays queued across the rollout

  Rng rng(5);
  const FuzzyPsm second = randomGrammar(rng);
  const auto artifact = GrammarArtifact::fromBytes(compileArtifact(second));
  const std::uint64_t gen = service.publishFromArtifact(artifact);
  EXPECT_EQ(service.generation(), gen);
  EXPECT_TRUE(service.snapshot()->artifactBacked());
  EXPECT_EQ(service.score("password1").bits,
            second.strengthBits("password1"));
  EXPECT_EQ(service.pendingUpdates(), 2u);

  // The queued update folds into the *new* grammar at the next publish.
  FuzzyPsm expected = FuzzyPsm::fromArtifact(*artifact);
  expected.update("qwerty12", 2);
  EXPECT_GT(service.publishNow(), gen);
  EXPECT_EQ(service.pendingUpdates(), 0u);
  EXPECT_EQ(service.score("qwerty12").bits,
            expected.strengthBits("qwerty12"));
}

}  // namespace
}  // namespace fpsm
