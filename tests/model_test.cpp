#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "corpus/dataset.h"
#include "meters/ideal/ideal.h"
#include "meters/pcfg/pcfg.h"
#include "model/montecarlo.h"
#include "model/unusable.h"
#include "util/error.h"
#include "util/rng.h"

namespace fpsm {
namespace {

Dataset zipfishDataset(int distinct, std::uint64_t headCount) {
  Dataset ds;
  for (int i = 0; i < distinct; ++i) {
    const auto count =
        std::max<std::uint64_t>(1, headCount / static_cast<std::uint64_t>(i + 1));
    ds.add("pw" + std::to_string(i), count);
  }
  return ds;
}

// --------------------------------------------------------------- Monte Carlo

TEST(MonteCarlo, RecoversExactRanksOfIdealModel) {
  // For the ideal (empirical) model the true guess number of the i-th most
  // frequent password is i (distinct counts). The estimator should land
  // within a small factor given enough samples.
  const Dataset ds = zipfishDataset(200, 1000);
  IdealMeter ideal(ds);
  Rng rng(42);
  MonteCarloEstimator mc(ideal, 20000, rng);
  const auto sorted = ds.sortedByFrequency();
  for (const std::size_t idx : {std::size_t{0}, std::size_t{4},
                                std::size_t{19}, std::size_t{79}}) {
    const double est = mc.guessNumberOf(ideal, sorted[idx].password);
    const double truth = static_cast<double>(idx + 1);
    EXPECT_GT(est, truth * 0.5) << idx;
    EXPECT_LT(est, truth * 2.0 + 2.0) << idx;
  }
}

TEST(MonteCarlo, MonotoneInProbability) {
  const Dataset ds = zipfishDataset(50, 100);
  IdealMeter ideal(ds);
  Rng rng(7);
  MonteCarloEstimator mc(ideal, 5000, rng);
  // Lower probability -> (weakly) larger guess number.
  double prev = 0.0;
  for (double lp : {-2.0, -5.0, -8.0, -12.0}) {
    const double g = mc.guessNumber(lp);
    EXPECT_GE(g, prev);
    prev = g;
  }
}

TEST(MonteCarlo, ZeroProbabilityGetsCeiling) {
  const Dataset ds = zipfishDataset(20, 50);
  IdealMeter ideal(ds);
  Rng rng(9);
  MonteCarloEstimator mc(ideal, 1000, rng);
  const double g =
      mc.guessNumber(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(g, mc.guessNumberCeiling());
  EXPECT_GE(mc.guessNumberCeiling(), 20.0);  // at least the support size
}

TEST(MonteCarlo, AgreesWithPcfgEnumerationOrder) {
  // Strong cross-check: the MC guess-number estimate of the k-th password
  // in the exact enumeration order should be close to k.
  Dataset ds;
  Rng gen(5);
  // A corpus with enough cross-product mass to make enumeration non-trivial.
  const char* words[] = {"password", "dragon", "monkey", "letme",
                         "qwerty", "secret"};
  const char* digits[] = {"1", "12", "123", "2000", "99"};
  for (const char* w : words) {
    for (const char* d : digits) {
      ds.add(std::string(w) + d, 1 + gen.below(20));
    }
  }
  PcfgModel model;
  model.train(ds);
  Rng rng(11);
  MonteCarloEstimator mc(model, 30000, rng);
  std::vector<std::pair<std::string, double>> guesses;
  model.enumerateGuesses(25, [&](std::string_view g, double lp) {
    guesses.emplace_back(std::string(g), lp);
    return true;
  });
  ASSERT_GE(guesses.size(), 20u);
  for (std::size_t k = 1; k < guesses.size(); k += 4) {
    const double est = mc.guessNumber(guesses[k].second);
    const double truth = static_cast<double>(k + 1);
    EXPECT_GT(est, truth / 4.0) << "guess " << guesses[k].first;
    EXPECT_LT(est, truth * 4.0 + 4.0) << "guess " << guesses[k].first;
  }
}

TEST(MonteCarlo, RejectsZeroSamples) {
  const Dataset ds = zipfishDataset(5, 10);
  IdealMeter ideal(ds);
  Rng rng(1);
  EXPECT_THROW(MonteCarloEstimator(ideal, 0, rng), InvalidArgument);
}

// ----------------------------------------------------------------- Unusable

TEST(Unusable, AllUsableWhenTestEqualsTrain) {
  const Dataset ds = zipfishDataset(50, 100);
  IdealMeter ideal(ds);
  const auto res = unusableGuessAnalysis(ideal, ds, {10, 50});
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].guesses, 10u);
  EXPECT_EQ(res[0].unusable, 0u);
  EXPECT_EQ(res[0].crackedUnique, 10u);
  EXPECT_EQ(res[1].unusable, 0u);
}

TEST(Unusable, AllUnusableWhenDisjoint) {
  const Dataset train = zipfishDataset(30, 100);
  Dataset test;
  test.add("completely", 3);
  test.add("different", 2);
  IdealMeter ideal(train);
  const auto res = unusableGuessAnalysis(ideal, test, {10});
  EXPECT_EQ(res[0].unusable, 10u);
  EXPECT_EQ(res[0].crackedUnique, 0u);
}

TEST(Unusable, ExhaustionReportsFinalState) {
  const Dataset train = zipfishDataset(5, 10);  // only 5 guesses available
  IdealMeter ideal(train);
  const auto res = unusableGuessAnalysis(ideal, train, {3, 100});
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].guesses, 3u);
  EXPECT_EQ(res[1].guesses, 100u);  // checkpoint label preserved
  EXPECT_EQ(res[1].crackedUnique, 5u);
}

TEST(Unusable, CrackedMassCountsOccurrences) {
  Dataset train;
  train.add("a", 5);
  train.add("b", 1);
  Dataset test;
  test.add("a", 7);
  test.add("c", 2);
  IdealMeter ideal(train);
  const auto res = unusableGuessAnalysis(ideal, test, {2});
  EXPECT_EQ(res[0].crackedUnique, 1u);
  EXPECT_EQ(res[0].crackedMass, 7u);
  EXPECT_EQ(res[0].unusable, 1u);
}

TEST(Unusable, ValidatesArguments) {
  const Dataset ds = zipfishDataset(5, 10);
  IdealMeter ideal(ds);
  EXPECT_THROW(unusableGuessAnalysis(ideal, ds, {}), InvalidArgument);
  EXPECT_THROW(unusableGuessAnalysis(ideal, ds, {10, 5}), InvalidArgument);
}

}  // namespace
}  // namespace fpsm
