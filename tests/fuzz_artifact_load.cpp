// Fuzz harness for the .fpsmb artifact loader.
//
// Contract under test (src/artifact/format.h): feeding GrammarArtifact::
// fromBytes ANY byte sequence either yields a valid artifact or throws
// ArtifactError. Any other exception, crash, hang, or sanitizer report is
// a bug. A successfully loaded artifact must additionally survive a
// scoring call — validation is only worth anything if the bytes it admits
// are actually safe to traverse.
//
// Two ways to run it:
//   * coverage-guided: compile with clang's libFuzzer
//     (clang++ -fsanitize=fuzzer,address -DFPSM_LIBFUZZER ...); the
//     LLVMFuzzerTestOneInput entry point below is the standard ABI.
//   * standalone (what `ctest -L artifact` runs when FPSM_FUZZERS=ON,
//     and the only option under gcc): the bundled main() replays any
//     corpus files given as arguments, then runs a seeded mutation storm
//     for --seconds N (default 30) starting from freshly compiled valid
//     artifacts. Mutations repair the checksums half the time so inputs
//     reach the structural validation layers instead of dying at the
//     checksum gate.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <exception>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "artifact/checksum.h"
#include "core/fuzzy_psm.h"
#include "util/rng.h"

namespace {

using fpsm::GrammarArtifact;

/// One fuzz probe: must load cleanly or throw ArtifactError; nothing else.
void probe(const std::uint8_t* data, std::size_t size) {
  std::vector<std::byte> bytes(size);
  if (size != 0) std::memcpy(bytes.data(), data, size);
  try {
    const auto artifact = GrammarArtifact::fromBytes(std::move(bytes));
    // Admitted bytes must be traversable: exercise the scoring hot path,
    // which runs with no per-access bounds checks by design.
    (void)artifact->grammar().log2Prob("password1");
    (void)artifact->grammar().parse("Dr@gon99!x");
  } catch (const fpsm::ArtifactError&) {
    // the typed rejection path — exactly the contract
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FUZZ BUG: non-ArtifactError escaped: %s\n",
                 e.what());
    std::terminate();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  probe(data, size);
  return 0;
}

#ifndef FPSM_LIBFUZZER

namespace {

/// Recomputes section + header checksums when the (possibly mutated)
/// section table still describes in-bounds payloads; otherwise leaves the
/// buffer alone. Mirrors the repair helper in artifact_test.cpp.
void tryRepairChecksums(std::vector<std::uint8_t>& b) {
  constexpr std::size_t kPrelude =
      fpsm::kArtifactHeaderBytes +
      fpsm::kArtifactSectionCount * fpsm::kArtifactSectionEntryBytes;
  if (b.size() < kPrelude) return;
  auto u64At = [&](std::size_t off) {
    std::uint64_t v;
    std::memcpy(&v, b.data() + off, 8);
    return v;
  };
  for (std::uint32_t i = 0; i < fpsm::kArtifactSectionCount; ++i) {
    const std::size_t entry =
        fpsm::kArtifactHeaderBytes + i * fpsm::kArtifactSectionEntryBytes;
    const std::uint64_t offset = u64At(entry + 8);
    const std::uint64_t bytes = u64At(entry + 16);
    if (offset > b.size() || bytes > b.size() - offset) return;
    const std::uint64_t sum = fpsm::xxhash64(
        reinterpret_cast<const std::byte*>(b.data() + offset), bytes);
    std::memcpy(b.data() + entry + 24, &sum, 8);
  }
  const std::uint64_t zero = 0;
  std::memcpy(b.data() + 32, &zero, 8);
  const std::uint64_t head = fpsm::xxhash64(
      reinterpret_cast<const std::byte*>(b.data()), kPrelude);
  std::memcpy(b.data() + 32, &head, 8);
}

std::vector<std::uint8_t> seedArtifact(std::uint64_t seed) {
  fpsm::Rng rng(seed);
  fpsm::FuzzyConfig cfg;
  cfg.matchReverse = rng.chance(0.5);
  fpsm::FuzzyPsm psm(cfg);
  const char* words[] = {"password", "dragon", "monkey", "shadow"};
  for (const char* w : words) psm.addBaseWord(w);
  for (int i = 0; i < 20; ++i) {
    std::string pw = words[rng.below(4)];
    if (rng.chance(0.5)) pw += std::to_string(rng.below(100));
    psm.update(pw, 1 + rng.below(4));
  }
  const std::vector<std::byte> bytes = fpsm::compileArtifact(psm);
  std::vector<std::uint8_t> out(bytes.size());
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 30.0;
  std::vector<const char*> corpus;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else {
      corpus.push_back(argv[i]);
    }
  }

  // Replay any corpus files first (crash reproduction).
  for (const char* path : corpus) {
    std::FILE* f = std::fopen(path, "rb");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    std::vector<std::uint8_t> data;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      data.insert(data.end(), buf, buf + n);
    }
    std::fclose(f);
    probe(data.data(), data.size());
    std::printf("replayed %s (%zu bytes): ok\n", path, data.size());
  }
  if (!corpus.empty() && seconds <= 0) return 0;

  // Seeded mutation storm. clock() is fine here: single-threaded, and the
  // budget only bounds the run — determinism comes from the Rng seed.
  fpsm::Rng rng(0xf52bu);
  const std::clock_t deadline =
      std::clock() + static_cast<std::clock_t>(seconds * CLOCKS_PER_SEC);
  std::uint64_t iterations = 0;
  std::vector<std::uint8_t> base = seedArtifact(1);
  while (std::clock() < deadline) {
    if (rng.chance(0.01)) base = seedArtifact(rng.below(1000));
    std::vector<std::uint8_t> input;
    switch (rng.below(5)) {
      case 0:  // pure noise
        input.resize(rng.below(512));
        for (auto& byte : input) {
          byte = static_cast<std::uint8_t>(rng.below(256));
        }
        break;
      case 1:  // truncation
        input.assign(base.begin(),
                     base.begin() + rng.below(base.size() + 1));
        break;
      case 2:  // growth: valid artifact + trailing garbage
        input = base;
        for (std::uint64_t i = rng.below(64); i-- > 0;) {
          input.push_back(static_cast<std::uint8_t>(rng.below(256)));
        }
        break;
      default: {  // bit flips / byte stomps, 1..16 sites
        input = base;
        const std::uint64_t edits = 1 + rng.below(16);
        for (std::uint64_t i = 0; i < edits; ++i) {
          auto& target = input[rng.below(input.size())];
          target = rng.chance(0.5)
                       ? static_cast<std::uint8_t>(
                             target ^ (1u << rng.below(8)))
                       : static_cast<std::uint8_t>(rng.below(256));
        }
        break;
      }
    }
    if (rng.chance(0.5)) tryRepairChecksums(input);
    probe(input.data(), input.size());
    ++iterations;
  }
  std::printf("fuzz_artifact_load: %llu inputs, 0 escapes\n",
              static_cast<unsigned long long>(iterations));
  return 0;
}

#endif  // FPSM_LIBFUZZER
