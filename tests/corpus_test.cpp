#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/analysis.h"
#include "corpus/dataset.h"
#include "corpus/frequency.h"
#include "corpus/io.h"
#include "util/error.h"
#include "util/rng.h"

namespace fpsm {
namespace {

Dataset makeSmall() {
  Dataset ds("small");
  ds.add("123456", 5);
  ds.add("password", 3);
  ds.add("abc123", 2);
  ds.add("Zq9!x", 1);
  return ds;
}

// -------------------------------------------------------------------- dataset

TEST(Dataset, TotalsAndFrequencies) {
  const Dataset ds = makeSmall();
  EXPECT_EQ(ds.total(), 11u);
  EXPECT_EQ(ds.unique(), 4u);
  EXPECT_EQ(ds.frequency("123456"), 5u);
  EXPECT_EQ(ds.frequency("nope"), 0u);
  EXPECT_TRUE(ds.contains("password"));
  EXPECT_NEAR(ds.probability("123456"), 5.0 / 11.0, 1e-12);
  EXPECT_EQ(ds.probability("nope"), 0.0);
}

TEST(Dataset, AddAccumulates) {
  Dataset ds;
  ds.add("a");
  ds.add("a", 2);
  EXPECT_EQ(ds.frequency("a"), 3u);
  ds.add("a", 0);  // no-op
  EXPECT_EQ(ds.frequency("a"), 3u);
  EXPECT_THROW(ds.add(""), InvalidArgument);
}

TEST(Dataset, SortedByFrequencyIsDeterministic) {
  Dataset ds;
  ds.add("bb", 2);
  ds.add("aa", 2);
  ds.add("cc", 7);
  const auto sorted = ds.sortedByFrequency();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].password, "cc");
  EXPECT_EQ(sorted[1].password, "aa");  // ties lexicographic
  EXPECT_EQ(sorted[2].password, "bb");
}

TEST(Dataset, SortedViewOfTemporaryDoesNotDangle) {
  // The rvalue overload materializes a copy, so iterating the sorted view
  // of a temporary dataset is safe (regression test for the cache).
  std::string first;
  for (const auto& e : makeSmall().sortedByFrequency()) {
    first = e.password;
    break;
  }
  EXPECT_EQ(first, "123456");
}

TEST(Dataset, SortedCacheInvalidatedByAdd) {
  Dataset ds;
  ds.add("a", 1);
  ds.add("b", 2);
  EXPECT_EQ(ds.sortedByFrequency().front().password, "b");
  ds.add("a", 5);
  EXPECT_EQ(ds.sortedByFrequency().front().password, "a");
}

TEST(Dataset, MergeAddsCounts) {
  Dataset a = makeSmall();
  Dataset b;
  b.add("123456", 5);
  b.add("fresh", 1);
  a.merge(b);
  EXPECT_EQ(a.frequency("123456"), 10u);
  EXPECT_EQ(a.frequency("fresh"), 1u);
  EXPECT_EQ(a.total(), 17u);
}

TEST(Dataset, SampleOccurrenceMatchesProbabilities) {
  Dataset ds;
  ds.add("common", 9);
  ds.add("rare", 1);
  Rng rng(77);
  int common = 0;
  for (int i = 0; i < 20000; ++i) {
    if (ds.sampleOccurrence(rng) == "common") ++common;
  }
  EXPECT_NEAR(common / 20000.0, 0.9, 0.02);
  Dataset empty;
  EXPECT_THROW(empty.sampleOccurrence(rng), InvalidArgument);
}

TEST(Dataset, RandomSplitPreservesMultiset) {
  Dataset ds;
  for (int i = 0; i < 50; ++i) {
    ds.add("pw" + std::to_string(i), static_cast<std::uint64_t>(1 + i % 7));
  }
  Rng rng(5);
  const auto parts = randomSplit(ds, 4, rng);
  ASSERT_EQ(parts.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& p : parts) total += p.total();
  EXPECT_EQ(total, ds.total());
  // Per-password counts are preserved across parts.
  ds.forEach([&](std::string_view pw, std::uint64_t c) {
    std::uint64_t sum = 0;
    for (const auto& p : parts) sum += p.frequency(pw);
    EXPECT_EQ(sum, c);
  });
  // Quarters are roughly equal.
  for (const auto& p : parts) {
    EXPECT_NEAR(static_cast<double>(p.total()),
                static_cast<double>(ds.total()) / 4.0,
                static_cast<double>(ds.total()) * 0.15);
  }
  EXPECT_THROW(randomSplit(ds, 0, rng), InvalidArgument);
}

// ------------------------------------------------------------------------- io

TEST(Io, RoundTrip) {
  const Dataset ds = makeSmall();
  std::stringstream ss;
  saveDataset(ds, ss);
  Dataset back;
  const auto stats = loadDataset(ss, back);
  EXPECT_EQ(stats.accepted, ds.total());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(back.total(), ds.total());
  EXPECT_EQ(back.unique(), ds.unique());
  ds.forEach([&](std::string_view pw, std::uint64_t c) {
    EXPECT_EQ(back.frequency(pw), c);
  });
}

TEST(Io, PlainLinesCountOne) {
  std::stringstream ss("alpha\nbeta\nalpha\n");
  Dataset ds;
  const auto stats = loadDataset(ss, ds);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(ds.frequency("alpha"), 2u);
}

TEST(Io, RejectsBadLines) {
  std::stringstream ss("good\n\nbad\tnotanumber\nalso\t0\nfine\t3\n");
  Dataset ds;
  const auto stats = loadDataset(ss, ds);
  EXPECT_EQ(ds.frequency("good"), 1u);
  EXPECT_EQ(ds.frequency("fine"), 3u);
  EXPECT_EQ(stats.rejected, 3u);  // empty line, bad count, zero count
}

TEST(Io, HandlesCrlf) {
  std::stringstream ss("word\r\n");
  Dataset ds;
  const auto stats = loadDataset(ss, ds);
  EXPECT_TRUE(ds.contains("word"));
  EXPECT_EQ(stats.crlfNormalized, 1u);
}

// Regression: Windows-exported leak dumps arrive with CRLF endings and a
// UTF-8 BOM. Both must be stripped (not rejected, not mis-keyed into the
// password bytes) and tallied in LoadStats.
TEST(Io, StripsCrlfAndBomAndCountsThem) {
  std::stringstream ss("\xEF\xBB\xBF""first\t2\r\nsecond\r\nthird\n");
  Dataset ds;
  const auto stats = loadDataset(ss, ds);
  EXPECT_EQ(ds.frequency("first"), 2u);   // not "\xEF\xBB\xBFfirst"
  EXPECT_EQ(ds.frequency("second"), 1u);  // not "second\r"
  EXPECT_EQ(ds.frequency("third"), 1u);
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.crlfNormalized, 2u);
  EXPECT_EQ(stats.bomsStripped, 1u);
}

// The BOM is a byte-order marker, not content: it is only stripped from
// the first line. A later line starting with those bytes is an ordinary
// invalid (non-printable) password and is rejected as before.
TEST(Io, BomOnlyStrippedFromFirstLine) {
  std::stringstream ss("plain\n\xEF\xBB\xBFmarked\n");
  Dataset ds;
  const auto stats = loadDataset(ss, ds);
  EXPECT_EQ(stats.bomsStripped, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_TRUE(ds.contains("plain"));
  EXPECT_FALSE(ds.contains("marked"));
}

TEST(Io, MissingFileThrows) {
  Dataset ds;
  EXPECT_THROW(loadDatasetFile("/nonexistent/path/x.txt", ds), IoError);
}

// ------------------------------------------------------------------- analysis

TEST(Analysis, TopKAndHeadMass) {
  const Dataset ds = makeSmall();
  const auto top = topK(ds, 2);
  ASSERT_EQ(top.entries.size(), 2u);
  EXPECT_EQ(top.entries[0].password, "123456");
  EXPECT_EQ(top.entries[1].password, "password");
  EXPECT_NEAR(top.headMass, 8.0 / 11.0, 1e-12);
  const auto all = topK(ds, 100);
  EXPECT_EQ(all.entries.size(), 4u);
  EXPECT_NEAR(all.headMass, 1.0, 1e-12);
}

TEST(Analysis, CompositionClassesAreExclusiveWhereExpected) {
  Dataset ds;
  ds.add("abcdef", 4);     // only lower
  ds.add("ABCDEF", 2);     // only upper
  ds.add("123456", 3);     // only digits
  ds.add("!!!", 1);        // only symbols
  const auto s = compositionStats(ds);
  EXPECT_NEAR(s.onlyLower, 0.4, 1e-12);
  EXPECT_NEAR(s.onlyUpper, 0.2, 1e-12);
  EXPECT_NEAR(s.onlyDigits, 0.3, 1e-12);
  EXPECT_NEAR(s.onlySymbols, 0.1, 1e-12);
  EXPECT_NEAR(s.onlyLetters, 0.6, 1e-12);
  EXPECT_NEAR(s.alnumOnly, 0.9, 1e-12);
  EXPECT_NEAR(s.hasDigit, 0.3, 1e-12);
}

TEST(Analysis, CompositionStructuredShapes) {
  Dataset ds;
  ds.add("123abc", 1);   // digits-then-lower (and digits-then-letters)
  ds.add("abc123", 1);   // letters-then-digits
  ds.add("abc1", 1);     // lower-then-one and letters-then-digits
  ds.add("12ABc", 1);    // digits-then-letters only
  const auto s = compositionStats(ds);
  EXPECT_NEAR(s.digitsThenLower, 0.25, 1e-12);
  EXPECT_NEAR(s.digitsThenLetters, 0.5, 1e-12);
  EXPECT_NEAR(s.lettersThenDigits, 0.5, 1e-12);
  EXPECT_NEAR(s.lowerThenOne, 0.25, 1e-12);
}

TEST(Analysis, LengthDistributionBucketsSumToOne) {
  Dataset ds;
  ds.add("abc", 2);               // 1-5 bucket
  ds.add("abcdef", 3);            // 6
  ds.add("abcdefghij", 1);        // 10
  ds.add("abcdefghijklmnop", 4);  // >= 15
  const auto d = lengthDistribution(ds);
  EXPECT_NEAR(d.short1to5, 0.2, 1e-12);
  EXPECT_NEAR(d.exact[0], 0.3, 1e-12);   // length 6
  EXPECT_NEAR(d.exact[4], 0.1, 1e-12);   // length 10
  EXPECT_NEAR(d.long15plus, 0.4, 1e-12);
  double sum = d.short1to5 + d.long15plus;
  for (double v : d.exact) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Analysis, FrequencySpectrum) {
  Dataset ds;
  ds.add("a", 10);
  ds.add("b", 4);
  ds.add("c", 1);
  ds.add("d", 1);
  ds.add("e", 2);
  const auto spec = frequencySpectrum(ds);
  // Spectrum ascending in f: (1,2), (2,1), (4,1), (10,1).
  ASSERT_EQ(spec.spectrum.size(), 4u);
  EXPECT_EQ(spec.spectrum[0], (std::pair<std::uint64_t, std::uint64_t>{1, 2}));
  EXPECT_EQ(spec.spectrum[3],
            (std::pair<std::uint64_t, std::uint64_t>{10, 1}));
  EXPECT_EQ(spec.singletons, 2u);
  EXPECT_EQ(spec.reliableDistinct, 2u);  // a and b
  EXPECT_NEAR(spec.singletonMass, 2.0 / 18.0, 1e-12);
  EXPECT_NEAR(spec.reliableMass, 14.0 / 18.0, 1e-12);
  EXPECT_GT(spec.zipf.exponent, 0.0);

  Dataset tiny;
  tiny.add("only");
  EXPECT_THROW(frequencySpectrum(tiny), InvalidArgument);
}

TEST(Analysis, OverlapFraction) {
  Dataset a, b;
  a.add("one", 5);
  a.add("two", 1);
  a.add("three", 4);
  b.add("one", 2);
  b.add("three", 9);
  EXPECT_NEAR(overlapFraction(a, b), 2.0 / 3.0, 1e-12);
  // Threshold excludes "two" (freq 1) -> both remaining are shared.
  EXPECT_NEAR(overlapFraction(a, b, 4), 1.0, 1e-12);
  Dataset empty;
  EXPECT_EQ(overlapFraction(empty, b), 0.0);
}

}  // namespace
}  // namespace fpsm
