#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <numeric>

#include "util/chars.h"
#include "util/error.h"
#include "util/format.h"
#include "util/hash.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/wordlists.h"

namespace fpsm {
namespace {

// ---------------------------------------------------------------------- chars

TEST(Chars, ClassOfCoversAllPrintable) {
  int lower = 0, upper = 0, digit = 0, symbol = 0;
  for (int c = 0x20; c <= 0x7e; ++c) {
    switch (classOf(static_cast<char>(c))) {
      case CharClass::Lower: ++lower; break;
      case CharClass::Upper: ++upper; break;
      case CharClass::Digit: ++digit; break;
      case CharClass::Symbol: ++symbol; break;
      case CharClass::Other: FAIL() << "printable char classed Other: " << c;
    }
  }
  EXPECT_EQ(lower, 26);
  EXPECT_EQ(upper, 26);
  EXPECT_EQ(digit, 10);
  EXPECT_EQ(symbol, 95 - 26 - 26 - 10);
}

TEST(Chars, NonPrintableIsOther) {
  EXPECT_EQ(classOf('\t'), CharClass::Other);
  EXPECT_EQ(classOf('\x1f'), CharClass::Other);
  EXPECT_EQ(classOf('\x7f'), CharClass::Other);
}

TEST(Chars, SegmentClassFoldsCase) {
  EXPECT_EQ(segmentClassOf('a'), SegmentClass::Letter);
  EXPECT_EQ(segmentClassOf('Z'), SegmentClass::Letter);
  EXPECT_EQ(segmentClassOf('7'), SegmentClass::Digit);
  EXPECT_EQ(segmentClassOf('@'), SegmentClass::Symbol);
}

TEST(Chars, CaseConversion) {
  EXPECT_EQ(toLower('A'), 'a');
  EXPECT_EQ(toLower('a'), 'a');
  EXPECT_EQ(toLower('1'), '1');
  EXPECT_EQ(toUpper('z'), 'Z');
  EXPECT_EQ(toLowerCopy("PassWord1!"), "password1!");
}

TEST(Chars, LeetRuleIndicesMatchPaperOrder) {
  // Table VI order: L1 a@, L2 s$, L3 o0, L4 i1, L5 e3, L6 t7.
  EXPECT_EQ(leetRuleOf('a'), 0);
  EXPECT_EQ(leetRuleOf('@'), 0);
  EXPECT_EQ(leetRuleOf('s'), 1);
  EXPECT_EQ(leetRuleOf('$'), 1);
  EXPECT_EQ(leetRuleOf('o'), 2);
  EXPECT_EQ(leetRuleOf('0'), 2);
  EXPECT_EQ(leetRuleOf('i'), 3);
  EXPECT_EQ(leetRuleOf('1'), 3);
  EXPECT_EQ(leetRuleOf('e'), 4);
  EXPECT_EQ(leetRuleOf('3'), 4);
  EXPECT_EQ(leetRuleOf('t'), 5);
  EXPECT_EQ(leetRuleOf('7'), 5);
  EXPECT_FALSE(leetRuleOf('b').has_value());
  EXPECT_FALSE(leetRuleOf('9').has_value());
}

TEST(Chars, LeetRuleUpperCaseLetters) {
  EXPECT_EQ(leetRuleOf('A'), 0);
  EXPECT_EQ(leetRuleOf('S'), 1);
  EXPECT_EQ(leetPartner('A'), '@');
}

TEST(Chars, LeetPartnerIsInvolutionOnLowercase) {
  for (const auto& r : kLeetRules) {
    EXPECT_EQ(leetPartner(r.letter), r.sub);
    EXPECT_EQ(leetPartner(r.sub), r.letter);
  }
}

TEST(Chars, PasswordValidation) {
  EXPECT_TRUE(isValidPassword("p@ssw0rd!"));
  EXPECT_FALSE(isValidPassword(""));
  EXPECT_FALSE(isValidPassword(std::string("ab\x01" "cd", 5)));
  EXPECT_NO_THROW(validatePassword("hello"));
  EXPECT_THROW(validatePassword(""), InvalidArgument);
  EXPECT_THROW(validatePassword("a\tb"), InvalidArgument);
}

// ----------------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Rng a2(42);
  std::vector<std::uint64_t> s1, s2;
  for (int i = 0; i < 16; ++i) s1.push_back(a2());
  Rng b2(42);
  for (int i = 0; i < 16; ++i) s2.push_back(b2());
  EXPECT_EQ(s1, s2);
  EXPECT_NE(a(), c());
}

TEST(Rng, BelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 100);
  }
  EXPECT_THROW(rng.below(0), InvalidArgument);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // Child should not replay the parent stream.
  Rng b(5);
  (void)b();  // advance past the fork draw
  EXPECT_NE(child(), b());
}

TEST(SampleDiscrete, RespectsWeights) {
  Rng rng(3);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> hits{};
  for (int i = 0; i < 40000; ++i) ++hits[sampleDiscrete(rng, w)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(hits[0] / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(hits[2] / 40000.0, 0.75, 0.02);
}

TEST(SampleDiscrete, RejectsDegenerate) {
  Rng rng(3);
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(sampleDiscrete(rng, zero), InvalidArgument);
  const std::vector<double> neg = {1.0, -1.0};
  EXPECT_THROW(sampleDiscrete(rng, neg), InvalidArgument);
}

TEST(DiscreteSampler, MatchesDirectSampling) {
  Rng rng(9);
  const std::vector<double> w = {5.0, 1.0, 4.0};
  DiscreteSampler sampler(w);
  std::array<int, 3> hits{};
  for (int i = 0; i < 50000; ++i) ++hits[sampler(rng)];
  EXPECT_NEAR(hits[0] / 50000.0, 0.5, 0.02);
  EXPECT_NEAR(hits[1] / 50000.0, 0.1, 0.02);
  EXPECT_NEAR(hits[2] / 50000.0, 0.4, 0.02);
}

TEST(DiscreteSampler, RejectsEmpty) {
  const std::vector<double> none;
  EXPECT_THROW(DiscreteSampler{none}, InvalidArgument);
}

// -------------------------------------------------------------------- format

TEST(Format, Doubles) {
  EXPECT_EQ(fmtDouble(0.12345, 3), "0.123");
  EXPECT_EQ(fmtDouble(1.0, 2), "1.00");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmtPercent(0.1234), "12.34%");
  EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Format, CountsWithSeparators) {
  EXPECT_EQ(fmtCount(0), "0");
  EXPECT_EQ(fmtCount(999), "999");
  EXPECT_EQ(fmtCount(1000), "1,000");
  EXPECT_EQ(fmtCount(30901241), "30,901,241");
}

TEST(Format, TextTableAlignsAndValidates) {
  TextTable t({"Name", "Count"});
  t.addRow({"abc", "1,234"});
  EXPECT_THROW(t.addRow({"too", "many", "cells"}), InvalidArgument);
  const std::string r = t.render();
  EXPECT_NE(r.find("Name"), std::string::npos);
  EXPECT_NE(r.find("1,234"), std::string::npos);
  EXPECT_NE(r.find("---"), std::string::npos);
}

// ---------------------------------------------------------------------- hash

// ------------------------------------------------------------------ parallel

TEST(Parallel, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 50000;
  std::vector<int> hits(kN, 0);
  parallelFor(kN, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(Parallel, SmallInputsRunInline) {
  std::atomic<int> count{0};
  parallelFor(5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
  parallelFor(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallelFor(20000,
                  [](std::size_t i) {
                    if (i == 12345) throw InvalidArgument("boom");
                  }),
      InvalidArgument);
}

TEST(Parallel, WorkerCountBounds) {
  EXPECT_EQ(parallelWorkerCount(10), 1u);        // tiny input: inline
  EXPECT_GE(parallelWorkerCount(1 << 20), 1u);   // large input: >= 1
  EXPECT_EQ(parallelWorkerCount(1 << 20, 3), 3u);
}

TEST(Parallel, ExplicitRequestNotClampedByWorkHeuristic) {
  // Regression: an explicit thread request used to be silently clamped to
  // n/1024 — a 100-item batch asking for 4 workers got 1. Callers with
  // heavy per-item work (e.g. MeterService::scoreBatch fanning out fuzzy
  // parses) must get the fan-out they asked for.
  EXPECT_EQ(parallelWorkerCount(100, 4), 4u);
  EXPECT_EQ(parallelWorkerCount(2000, 8), 8u);
  // ... capped at n so no worker is idle, and n = 0 stays inline.
  EXPECT_EQ(parallelWorkerCount(2, 8), 2u);
  EXPECT_EQ(parallelWorkerCount(0, 8), 1u);
}

TEST(Parallel, SingleItemRunsInlineOnCallerThread) {
  // n = 1 must not spawn: even with an explicit thread request the worker
  // count clamps to n, and the one item runs on the calling thread (this
  // is what keeps trivial scoreBatch calls allocation- and thread-free).
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran{};
  parallelFor(1, [&](std::size_t) { ran = std::this_thread::get_id(); }, 8);
  EXPECT_EQ(ran, caller);
}

TEST(Parallel, MoreThreadsThanItemsVisitsEachOnce) {
  // 16 requested workers over 3 items: no index may be dropped or visited
  // twice, and the call must not deadlock waiting for idle workers.
  std::array<std::atomic<int>, 3> hits{};
  parallelFor(3, [&](std::size_t i) { ++hits[i]; }, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ZeroItemsNeverInvokesBody) {
  std::atomic<int> count{0};
  parallelFor(0, [&](std::size_t) { ++count; }, 8);
  EXPECT_EQ(count.load(), 0);
}

TEST(Parallel, ExceptionUnderFanOutPropagatesExactlyOne) {
  // Every worker throws; ParallelErrorChannel must keep the first error,
  // join all workers, and rethrow exactly one — and the pool must be fully
  // torn down so the next call works.
  try {
    parallelFor(
        64, [](std::size_t i) { throw InvalidArgument("boom " +
                                                      std::to_string(i)); },
        4);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  std::atomic<int> count{0};
  parallelFor(8, [&](std::size_t) { ++count; }, 4);
  EXPECT_EQ(count.load(), 8);
}

TEST(Parallel, ExplicitRequestActuallyFansOut) {
  // parallelFor must honor the explicit request end to end: with 4 workers
  // over 8 slow items, at least two distinct threads participate.
  std::mutex mu;
  std::set<std::thread::id> seen;
  parallelFor(
      8,
      [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        const std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      },
      4);
  EXPECT_GE(seen.size(), 2u);
}

// ---------------------------------------------------------------- wordlists

TEST(Wordlists, NonEmptyAndValid) {
  for (const auto list :
       {words::commonPasswords(), words::chineseCommonPasswords(),
        words::englishWords(), words::englishNames(),
        words::pinyinSyllables(), words::pinyinWords(),
        words::keyboardWalks(), words::digitStrings(),
        words::westernDigitStrings(), words::chineseDigitStrings()}) {
    ASSERT_GT(list.size(), 20u);
    for (const auto w : list) {
      EXPECT_TRUE(isValidPassword(w)) << w;
    }
  }
}

TEST(Wordlists, HeadsMatchTheLeaks) {
  // Rank 1 everywhere is 123456 (Table VIII).
  EXPECT_EQ(words::commonPasswords()[0], "123456");
  EXPECT_EQ(words::chineseCommonPasswords()[0], "123456");
  // The union digit list covers both cultures.
  const auto all = words::digitStrings();
  EXPECT_NE(std::find(all.begin(), all.end(), "5201314"), all.end());
  EXPECT_NE(std::find(all.begin(), all.end(), "696969"), all.end());
}

TEST(Hash, TransparentLookup) {
  StringMap<int> m;
  m["hello"] = 1;
  const std::string_view key = "hello";
  EXPECT_NE(m.find(key), m.end());
  EXPECT_EQ(m.find(std::string_view("nope")), m.end());
  StringSet s;
  s.insert("x");
  EXPECT_TRUE(s.contains(std::string_view("x")));
}

}  // namespace
}  // namespace fpsm
