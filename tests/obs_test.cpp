// Observability battery (src/obs, DESIGN.md §14): histogram bucket
// algebra, snapshot aggregation across thread shards, concurrent update
// hammering (the `obs-tsan` preset's target: `ctest -L obs` in a Sanitize
// tree), StageTimer semantics, and render-format shape. Every value
// assertion is gated on FPSM_METRICS_ENABLED so the identical suite runs
// under the metrics-off build, where it proves the kill switch: updates
// are no-ops and snapshot() returns all-zero rows of the same shape.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/stage_timer.h"

namespace fpsm::obs {
namespace {

// ---------------------------------------------------------------------
// Bucket algebra. Pure constexpr math, identical in both builds.

TEST(HistoBuckets, ZeroGetsItsOwnBucket) {
  static_assert(histoBucketIndex(0) == 0);
  static_assert(histoBucketUpperBound(0) == 0);
  EXPECT_EQ(histoBucketIndex(0), 0u);
}

TEST(HistoBuckets, PowerOfTwoBoundaries) {
  // Bucket b >= 1 covers [2^(b-1), 2^b): the lower bound lands in b, the
  // value just below the upper bound lands in b, the upper bound itself
  // rolls into b+1.
  for (std::size_t b = 1; b + 1 < kHistoBuckets; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = std::uint64_t{1} << b;
    EXPECT_EQ(histoBucketIndex(lo), b) << "lower bound of bucket " << b;
    EXPECT_EQ(histoBucketIndex(hi - 1), b) << "top of bucket " << b;
    EXPECT_EQ(histoBucketIndex(hi), b + 1) << "start of bucket " << b + 1;
  }
}

TEST(HistoBuckets, OverflowClampsIntoLastBucket) {
  EXPECT_EQ(histoBucketIndex(std::uint64_t{1} << 39), kHistoBuckets - 1);
  EXPECT_EQ(histoBucketIndex(~std::uint64_t{0}), kHistoBuckets - 1);
}

TEST(HistoBuckets, UpperBoundBracketsEveryValue) {
  // ub(index(v)) >= v, and v is above the previous bucket's upper bound —
  // the two inequalities that make percentile() an upper-bound estimate
  // with <= 2x relative error.
  const std::uint64_t probes[] = {1,    2,     3,      4,       7,
                                  8,    100,   1023,   1024,    4097,
                                  1u << 20, (1u << 20) + 1, 999999999};
  for (const std::uint64_t v : probes) {
    const std::size_t b = histoBucketIndex(v);
    EXPECT_GE(histoBucketUpperBound(b), v) << v;
    if (b > 0) {
      EXPECT_GT(v, histoBucketUpperBound(b - 1)) << v;
    }
  }
}

TEST(HistoBuckets, UpperBoundFormula) {
  static_assert(histoBucketUpperBound(1) == 1);
  static_assert(histoBucketUpperBound(10) == 1023);
  EXPECT_EQ(histoBucketUpperBound(kHistoBuckets - 1),
            (std::uint64_t{1} << (kHistoBuckets - 1)) - 1);
}

// ---------------------------------------------------------------------
// Percentiles on a hand-built snapshot (no registry involved).

TEST(HistogramSnapshot, EmptyPercentileIsZero) {
  const HistogramSnapshot h{};
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramSnapshot, NearestRankWalk) {
  // 10 samples in bucket 3 ([4,8)), 90 in bucket 7 ([64,128)): p05 falls
  // in the first bucket, p50/p99 in the second, each reported as the
  // bucket's inclusive upper bound.
  HistogramSnapshot h{};
  h.buckets[3] = 10;
  h.buckets[7] = 90;
  h.count = 100;
  h.sum = 10 * 5 + 90 * 100;
  EXPECT_EQ(h.percentile(0.05), histoBucketUpperBound(3));
  EXPECT_EQ(h.percentile(0.50), histoBucketUpperBound(7));
  EXPECT_EQ(h.percentile(0.99), histoBucketUpperBound(7));
  EXPECT_DOUBLE_EQ(h.mean(), (10 * 5 + 90 * 100) / 100.0);
}

TEST(HistogramSnapshot, SingleSample) {
  HistogramSnapshot h{};
  h.buckets[histoBucketIndex(42)] = 1;
  h.count = 1;
  h.sum = 42;
  EXPECT_EQ(h.percentile(0.0), histoBucketUpperBound(histoBucketIndex(42)));
  EXPECT_EQ(h.percentile(1.0), histoBucketUpperBound(histoBucketIndex(42)));
}

// ---------------------------------------------------------------------
// Registry round trips. resetForTest() first: the registry is process
// wide and other tests in this binary write to it.

TEST(Registry, CounterRoundTrip) {
  resetForTest();
  count(Counter::ServeCacheHits);
  count(Counter::ServeCacheHits, 9);
  const MetricsSnapshot snap = snapshot();
#if FPSM_METRICS_ENABLED
  EXPECT_EQ(snap.counter(Counter::ServeCacheHits), 10u);
#else
  EXPECT_EQ(snap.counter(Counter::ServeCacheHits), 0u);
#endif
  EXPECT_EQ(snap.counter(Counter::ServeCacheMisses), 0u);
}

TEST(Registry, GaugeSetAndAdd) {
  resetForTest();
  gaugeSet(Gauge::OnlineQueueDepth, 7);
  gaugeAdd(Gauge::OnlineQueueDepth, -3);
  gaugeSet(Gauge::ServeGeneration, 42);
  const MetricsSnapshot snap = snapshot();
#if FPSM_METRICS_ENABLED
  EXPECT_EQ(snap.gauge(Gauge::OnlineQueueDepth), 4);
  EXPECT_EQ(snap.gauge(Gauge::ServeGeneration), 42);
#else
  EXPECT_EQ(snap.gauge(Gauge::OnlineQueueDepth), 0);
  EXPECT_EQ(snap.gauge(Gauge::ServeGeneration), 0);
#endif
}

TEST(Registry, HistogramRoundTrip) {
  resetForTest();
  observe(Histo::ServeBatchSize, 0);
  observe(Histo::ServeBatchSize, 5);
  observe(Histo::ServeBatchSize, 5000);
  // Copy: histogram() returns a reference into the snapshot temporary.
  const HistogramSnapshot h =
      snapshot().histogram(Histo::ServeBatchSize);
#if FPSM_METRICS_ENABLED
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 5005u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[histoBucketIndex(5)], 1u);
  EXPECT_EQ(h.buckets[histoBucketIndex(5000)], 1u);
#else
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.sum, 0u);
#endif
}

TEST(Registry, SnapshotListsEveryMetricInEnumOrder) {
  // The O(1) accessors index by enum value — snapshot() must emit rows in
  // enum order with nothing missing, in both builds.
  const MetricsSnapshot snap = snapshot();
  ASSERT_EQ(snap.counters.size(), kCounterCount);
  ASSERT_EQ(snap.gauges.size(), kGaugeCount);
  ASSERT_EQ(snap.histograms.size(), kHistoCount);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_EQ(snap.counters[i].first, static_cast<Counter>(i));
  }
  for (std::size_t i = 0; i < kHistoCount; ++i) {
    EXPECT_EQ(snap.histograms[i].id, static_cast<Histo>(i));
  }
}

// Sum-of-shards consistency: updates from many threads (each thread maps
// to some shard) must aggregate exactly once writers are quiesced.
TEST(Registry, SnapshotSumsAllThreadShards) {
  resetForTest();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        count(Counter::TrainEntries);
      }
    });
  }
  for (auto& w : workers) w.join();
  const MetricsSnapshot snap = snapshot();
#if FPSM_METRICS_ENABLED
  EXPECT_EQ(snap.counter(Counter::TrainEntries), kThreads * kPerThread);
#else
  EXPECT_EQ(snap.counter(Counter::TrainEntries), 0u);
#endif
}

// The tsan target: counters, gauges, and histograms hammered from many
// threads concurrently with snapshot() readers. Correctness assertion is
// the post-join exact sum; the sanitizer asserts the absence of races.
TEST(Registry, ConcurrentHammerIsRaceFreeAndExact) {
  resetForTest();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kOps = 4000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        count(Counter::ServeScoreCalls);
        observe(Histo::ServeScoreLatency, (t * kOps + i) % 2048);
        gaugeSet(Gauge::ServeGeneration, static_cast<std::int64_t>(i));
      }
    });
  }
  // One racing reader: relaxed loads over live shards must be safe (the
  // "coherent enough" contract), even though mid-flight values are lagged.
  workers.emplace_back([] {
    for (int i = 0; i < 50; ++i) {
      const MetricsSnapshot snap = snapshot();
      (void)snap.counter(Counter::ServeScoreCalls);
    }
  });
  for (auto& w : workers) w.join();

  const MetricsSnapshot snap = snapshot();
#if FPSM_METRICS_ENABLED
  EXPECT_EQ(snap.counter(Counter::ServeScoreCalls), kThreads * kOps);
  const HistogramSnapshot& h = snap.histogram(Histo::ServeScoreLatency);
  EXPECT_EQ(h.count, kThreads * kOps);
  std::uint64_t bucketTotal = 0;
  for (const std::uint64_t b : h.buckets) bucketTotal += b;
  EXPECT_EQ(bucketTotal, h.count);
#else
  EXPECT_EQ(snap.counter(Counter::ServeScoreCalls), 0u);
#endif
}

// ---------------------------------------------------------------------
// StageTimer RAII semantics.

TEST(StageTimer, RecordsExactlyOnceOnDestruction) {
  resetForTest();
  { StageTimer span(Histo::OnlineCompactTrain); }
  const HistogramSnapshot h =
      snapshot().histogram(Histo::OnlineCompactTrain);
#if FPSM_METRICS_ENABLED
  EXPECT_EQ(h.count, 1u);
#else
  EXPECT_EQ(h.count, 0u);
#endif
}

TEST(StageTimer, StopRecordsEarlyAndDisarmsDestructor) {
  resetForTest();
  {
    StageTimer span(Histo::OnlineCompactWrite);
    (void)span.stop();
  }  // dtor must not record a second sample
  const HistogramSnapshot h =
      snapshot().histogram(Histo::OnlineCompactWrite);
#if FPSM_METRICS_ENABLED
  EXPECT_EQ(h.count, 1u);
#else
  EXPECT_EQ(h.count, 0u);
#endif
}

TEST(StageTimer, CancelRecordsNothing) {
  resetForTest();
  {
    StageTimer span(Histo::OnlineCompactGate);
    span.cancel();
  }
  EXPECT_EQ(snapshot().histogram(Histo::OnlineCompactGate).count, 0u);
}

// ---------------------------------------------------------------------
// Render formats: shape-stable in both builds (the dump contract).

TEST(Render, TextListsEveryMetricName) {
  const std::string text = snapshot().renderText();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_NE(text.find(counterName(static_cast<Counter>(i))),
              std::string::npos)
        << counterName(static_cast<Counter>(i));
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    EXPECT_NE(text.find(gaugeName(static_cast<Gauge>(i))),
              std::string::npos);
  }
  for (std::size_t i = 0; i < kHistoCount; ++i) {
    EXPECT_NE(text.find(histoName(static_cast<Histo>(i))),
              std::string::npos);
  }
}

TEST(Render, JsonIsLineOrientedWithHeader) {
  resetForTest();
  count(Counter::ServeCacheHits, 3);
  const std::string json = snapshot().renderJson();
  EXPECT_NE(json.find("\"fuzzypsm_metrics\": 1"), std::string::npos);
  // One object per line: every metric line carries its own name/type pair.
#if FPSM_METRICS_ENABLED
  EXPECT_NE(json.find("{\"name\": \"serve.cache.hits\", "
                      "\"type\": \"counter\", \"value\": 3}"),
            std::string::npos);
#else
  EXPECT_NE(json.find("{\"name\": \"serve.cache.hits\", "
                      "\"type\": \"counter\", \"value\": 0}"),
            std::string::npos);
#endif
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
}

#if !FPSM_METRICS_ENABLED
// Kill-switch build only: every update path must leave the snapshot
// all-zero — the compile-time proof that the layer is truly off.
TEST(KillSwitch, EveryUpdateIsANoOp) {
  count(Counter::ServeScoreCalls, 1000);
  gaugeAdd(Gauge::OnlineQueueDepth, 1000);
  observe(Histo::ServeScoreLatency, 1000);
  { StageTimer span(Histo::ServeScoreLatency); }
  const MetricsSnapshot snap = snapshot();
  for (const auto& [id, value] : snap.counters) EXPECT_EQ(value, 0u);
  for (const auto& [id, value] : snap.gauges) EXPECT_EQ(value, 0);
  for (const HistogramSnapshot& h : snap.histograms) EXPECT_EQ(h.count, 0u);
}
#endif

}  // namespace
}  // namespace fpsm::obs
