// Deep tests of the zxcvbn v1 reimplementation: per-matcher parameterized
// sweeps and scoring-DP behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include "meters/zxcvbn/adjacency.h"
#include "meters/zxcvbn/matching.h"
#include "meters/zxcvbn/zxcvbn.h"
#include "util/chars.h"

namespace fpsm {
namespace {

bool hasMatch(const std::vector<ZxMatch>& matches, MatchKind kind,
              std::string_view token) {
  return std::any_of(matches.begin(), matches.end(), [&](const ZxMatch& m) {
    return m.kind == kind && m.token == token;
  });
}

// ----------------------------------------------------------------- spatial

class SpatialWalks : public ::testing::TestWithParam<const char*> {};

TEST_P(SpatialWalks, DetectedAsFullWalkOnSomeGraph) {
  // Several graphs may match (qwerty and keypad both run); at least one
  // must cover the full walk.
  EXPECT_TRUE(hasMatch(matchSpatial(GetParam()), MatchKind::Spatial,
                       GetParam()))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CommonWalks, SpatialWalks,
                         ::testing::Values("qwerty", "qwertyuiop", "asdfgh",
                                           "zxcvbn", "14789", "78963",
                                           "poiuy"));

TEST(Spatial, DvorakHomeRowDetected) {
  const auto& g = KeyboardGraph::dvorak();
  EXPECT_TRUE(g.adjacent('a', 'o'));
  EXPECT_TRUE(g.adjacent('e', 'u'));
  EXPECT_FALSE(g.adjacent('a', 's'));  // qwerty neighbours, not dvorak
  EXPECT_TRUE(hasMatch(matchSpatial("aoeuidhtns"), MatchKind::Spatial,
                       "aoeuidhtns"));
}

TEST(Spatial, ColumnWalkSplitsAtTheJump) {
  // "qazwsx" is two physical columns; the walk breaks at z->w.
  const auto matches = matchSpatial("qazwsx");
  EXPECT_TRUE(hasMatch(matches, MatchKind::Spatial, "qaz"));
  EXPECT_TRUE(hasMatch(matches, MatchKind::Spatial, "wsx"));
}

TEST(Spatial, LongerWalksCostMore) {
  const double short3 = matchSpatial("qwe")[0].entropy;
  const double mid6 = matchSpatial("qwerty")[0].entropy;
  const double long10 = matchSpatial("qwertyuiop")[0].entropy;
  EXPECT_LT(short3, mid6);
  EXPECT_LT(mid6, long10);
}

TEST(Spatial, ShiftedWalkCostsMore) {
  const auto plain = matchSpatial("qwerty");
  const auto shifted = matchSpatial("QWErty");
  ASSERT_FALSE(plain.empty());
  ASSERT_FALSE(shifted.empty());
  EXPECT_GT(shifted[0].entropy, plain[0].entropy);
}

// --------------------------------------------------------------- sequences

class SequenceCases
    : public ::testing::TestWithParam<std::tuple<const char*, bool>> {};

TEST_P(SequenceCases, DetectionMatchesExpectation) {
  const auto [pw, expected] = GetParam();
  EXPECT_EQ(!matchSequence(pw).empty(), expected) << pw;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SequenceCases,
    ::testing::Values(std::make_tuple("abc", true),
                      std::make_tuple("cba", true),
                      std::make_tuple("XYZ", true),
                      std::make_tuple("789", true),
                      std::make_tuple("987", true),
                      std::make_tuple("ab", false),    // too short
                      std::make_tuple("aBc", false),   // class break
                      std::make_tuple("acd", false),   // step break at start
                      std::make_tuple("a1b", false)));

TEST(Sequence, ObviousStartsAreCheaper) {
  const double fromA = matchSequence("abcde")[0].entropy;
  const double fromM = matchSequence("mnopq")[0].entropy;
  EXPECT_LT(fromA, fromM);
}

TEST(Sequence, DescendingCostsOneMoreBit) {
  const double asc = matchSequence("defgh")[0].entropy;
  const double desc = matchSequence("hgfed")[0].entropy;
  EXPECT_NEAR(desc - asc, 1.0, 1e-9);
}

// -------------------------------------------------------------------- dates

class SeparatedDates
    : public ::testing::TestWithParam<std::tuple<const char*, bool>> {};

TEST_P(SeparatedDates, DetectionMatchesExpectation) {
  const auto [pw, expected] = GetParam();
  EXPECT_EQ(!matchDateSeparator(pw).empty(), expected) << pw;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeparatedDates,
    ::testing::Values(std::make_tuple("13.5.1990", true),
                      std::make_tuple("5/13/90", true),
                      std::make_tuple("1990-05-13", true),
                      std::make_tuple("13_05_1990", true),
                      std::make_tuple("13 5 1990", true),
                      std::make_tuple("13.5-1990", false),  // mixed seps
                      std::make_tuple("99.99.99", false),   // no day/month
                      std::make_tuple("13.5", false),       // two groups
                      std::make_tuple("abc", false)));

TEST(Dates, EmbeddedSeparatedDateFound) {
  // Sub-dates like "3.5.1990" may match too; the full form must be there.
  const auto matches = matchDateSeparator("pw13.5.1990x");
  ASSERT_TRUE(hasMatch(matches, MatchKind::Date, "13.5.1990"));
  const auto it = std::find_if(
      matches.begin(), matches.end(),
      [](const ZxMatch& m) { return m.token == "13.5.1990"; });
  EXPECT_EQ(it->i, 2u);
  EXPECT_EQ(it->j, 10u);
}

TEST(Dates, CompactDateGrid) {
  EXPECT_FALSE(matchDate("31121990").empty());  // ddmmyyyy
  EXPECT_FALSE(matchDate("19901231").empty());  // yyyymmdd
  EXPECT_FALSE(matchDate("12251999").empty());  // mmddyyyy
  EXPECT_TRUE(matchDate("99999999").empty());
  EXPECT_TRUE(matchDate("1234").empty());  // too short for a date
}

TEST(Dates, YearRangeBounds) {
  EXPECT_FALSE(matchYear("x1900y").empty());
  EXPECT_FALSE(matchYear("x2029y").empty());
  EXPECT_TRUE(matchYear("x1899y").empty());
  EXPECT_TRUE(matchYear("x2030y").empty());
}

// --------------------------------------------------------------- l33t sweep

class LeetTableSweep
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(LeetTableSweep, DecodesToDictionaryWord) {
  const auto [leet, plain] = GetParam();
  const auto matches = matchL33t(leet, RankedDictionary::embedded());
  const bool found = std::any_of(
      matches.begin(), matches.end(),
      [&, plainView = std::string_view(plain)](const ZxMatch& m) {
        return toLowerCopy(m.token).size() == plainView.size();
      });
  EXPECT_TRUE(found) << leet << " should decode toward " << plain;
}

INSTANTIATE_TEST_SUITE_P(
    Table, LeetTableSweep,
    ::testing::Values(std::make_tuple("p4ssword", "password"),
                      std::make_tuple("p@ssword", "password"),
                      std::make_tuple("dr4gon", "dragon"),
                      std::make_tuple("m0nkey", "monkey"),
                      std::make_tuple("pr1ncess", "princess"),
                      std::make_tuple("$unshine", "sunshine"),
                      std::make_tuple("ba5eball", "baseball"),
                      std::make_tuple("l3tmein", "letmein"),
                      std::make_tuple("6host", "ghost"),
                      std::make_tuple("2ombie", "zombie")));

TEST(Leet, MoreSubstitutionsCostMore) {
  const auto& dict = RankedDictionary::embedded();
  auto entropyOf = [&](std::string_view pw) {
    double best = 1e9;
    for (const auto& m : matchL33t(pw, dict)) {
      if (m.token == pw) best = std::min(best, m.entropy);
    }
    return best;
  };
  EXPECT_LT(entropyOf("passw0rd"), entropyOf("p@ssw0rd"));
}

// ------------------------------------------------------------- scoring DP

TEST(ScoringDp, PicksCheapestCover) {
  ZxcvbnMeter m;
  // "qwerty1990" should decompose into a spatial/dictionary match plus a
  // year, far below the bruteforce cost of 10 [a-z0-9] characters.
  const auto a = m.analyze("qwerty1990");
  EXPECT_LT(a.entropy, 20.0);
  ASSERT_GE(a.cover.size(), 2u);
  // Cover tiles left to right without overlap.
  for (std::size_t i = 1; i < a.cover.size(); ++i) {
    EXPECT_GT(a.cover[i].i, a.cover[i - 1].j);
  }
}

TEST(ScoringDp, BruteforceFloorForRandomStrings) {
  ZxcvbnMeter m;
  // No pattern should fire: entropy == len * log2(26) for lowercase.
  const std::string pw = "qkxvmwzjrp";
  EXPECT_NEAR(m.strengthBits(pw), 10 * std::log2(26.0), 1.0);
}

TEST(ScoringDp, EntropyBoundedByBruteforce) {
  // The DP never exceeds the pure bruteforce cost, and completing a
  // dictionary word can legitimately LOWER the entropy ("drago" ->
  // "dragon"), so no extension monotonicity is asserted.
  ZxcvbnMeter m;
  for (const char* pw :
       {"drago", "dragon", "dragon2015", "password!", "qkxvmwzjrp"}) {
    const double brute = static_cast<double>(std::string_view(pw).size()) *
                         std::log2(bruteforceCardinality(pw));
    EXPECT_LE(m.strengthBits(pw), brute + 1e-9) << pw;
    EXPECT_GE(m.strengthBits(pw), 0.0) << pw;
  }
  EXPECT_LT(m.strengthBits("dragon"), m.strengthBits("drago"));
}

TEST(ScoringDp, SeparatedDateScoredCheaply) {
  ZxcvbnMeter m;
  EXPECT_LT(m.strengthBits("13.5.1990"), 20.0);
  // Same characters shuffled into no pattern cost far more.
  EXPECT_GT(m.strengthBits("3.19.1095."), 25.0);
}

}  // namespace
}  // namespace fpsm
