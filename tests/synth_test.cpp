#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "corpus/analysis.h"
#include "stats/zipf.h"
#include "synth/behavior.h"
#include "synth/generator.h"
#include "synth/population.h"
#include "synth/profile.h"
#include "synth/vocab.h"
#include "util/chars.h"
#include "util/error.h"

namespace fpsm {
namespace {

// ------------------------------------------------------------------ survey

TEST(Survey, CreationChoiceMatchesPaperMarginals) {
  const SurveyModel s = SurveyModel::paper();
  EXPECT_NEAR(s.reuseOrModify(), 0.7738, 1e-9);  // paper headline
  Rng rng(1);
  int reuse = 0, modify = 0, fresh = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    switch (s.sampleCreationChoice(rng)) {
      case CreationChoice::ReuseExact: ++reuse; break;
      case CreationChoice::ModifyExisting: ++modify; break;
      case CreationChoice::CreateNew: ++fresh; break;
    }
  }
  EXPECT_NEAR((reuse + modify) / static_cast<double>(kDraws), 0.7738, 0.01);
  EXPECT_NEAR(fresh / static_cast<double>(kDraws),
              1.0 - s.reuseOrModify(), 0.01);
}

TEST(Survey, ConcatenationLeadsRuleMix) {
  const SurveyModel s = SurveyModel::paper();
  Rng rng(2);
  int counts[6] = {};
  for (int i = 0; i < 50000; ++i) {
    ++counts[static_cast<int>(s.samplePrimaryRule(rng))];
  }
  // Fig. 5: concatenation takes the lead, then capitalization and leet.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);  // leet > reverse
}

TEST(Survey, EndPlacementDominates) {
  const SurveyModel s = SurveyModel::paper();
  Rng rng(3);
  int end = 0, begin = 0, middle = 0;
  for (int i = 0; i < 50000; ++i) {
    switch (s.samplePlacement(rng)) {
      case Placement::End: ++end; break;
      case Placement::Beginning: ++begin; break;
      case Placement::Middle: ++middle; break;
    }
  }
  // Figs. 6/7: end > beginning > middle... the paper orders end, middle,
  // beginning by likelihood in the text; our model keeps end dominant.
  EXPECT_GT(end, begin + middle);
}

// -------------------------------------------------------------- vocabulary

TEST(Vocabulary, ProducesValidPasswordsPerLanguage) {
  Rng rng(4);
  for (const Language lang : {Language::Chinese, Language::English}) {
    const Vocabulary v(lang);
    for (int i = 0; i < 200; ++i) {
      for (const std::string& s :
           {v.popularPassword(rng), v.word(rng), v.name(rng),
            v.keyboardWalk(rng), v.digitIdiom(rng), v.year(rng),
            v.birthday(rng)}) {
        EXPECT_TRUE(isValidPassword(s)) << s;
      }
    }
  }
}

TEST(Vocabulary, YearAndBirthdayShapes) {
  const Vocabulary v(Language::English);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const std::string y = v.year(rng);
    ASSERT_EQ(y.size(), 4u);
    const int year = std::stoi(y);
    EXPECT_GE(year, 1970);
    EXPECT_LE(year, 2005);
    const std::string b = v.birthday(rng);
    EXPECT_TRUE(b.size() == 6 || b.size() == 8) << b;
    EXPECT_TRUE(std::all_of(b.begin(), b.end(), isDigit));
  }
}

TEST(Vocabulary, RandomDigitsLength) {
  const Vocabulary v(Language::Chinese);
  Rng rng(6);
  const std::string d = v.randomDigits(rng, 7);
  EXPECT_EQ(d.size(), 7u);
  EXPECT_TRUE(std::all_of(d.begin(), d.end(), isDigit));
}

// -------------------------------------------------------------- population

TEST(Population, DeterministicFromSeed) {
  PopulationModel a(100, 100, 42);
  PopulationModel b(100, 100, 42);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.user(Language::Chinese, i).portfolio,
              b.user(Language::Chinese, i).portfolio);
  }
  PopulationModel c(100, 100, 43);
  bool anyDiff = false;
  for (std::size_t i = 0; i < 100 && !anyDiff; ++i) {
    anyDiff = a.user(Language::English, i).portfolio !=
              c.user(Language::English, i).portfolio;
  }
  EXPECT_TRUE(anyDiff);
}

TEST(Population, PortfoliosAreSmallAndValid) {
  PopulationModel pop(500, 500, 7);
  for (const Language lang : {Language::Chinese, Language::English}) {
    for (std::size_t i = 0; i < 500; ++i) {
      const auto& u = pop.user(lang, i);
      EXPECT_EQ(u.language, lang);
      EXPECT_GE(u.portfolio.size(), 1u);
      EXPECT_LE(u.portfolio.size(), 3u);
      for (const auto& pw : u.portfolio) {
        EXPECT_TRUE(isValidPassword(pw)) << pw;
        EXPECT_GE(pw.size(), 6u);
        EXPECT_LE(pw.size(), 20u);
      }
    }
  }
}

TEST(Population, IndexWrapsModuloPool) {
  PopulationModel pop(50, 50, 9);
  EXPECT_EQ(pop.user(Language::Chinese, 3).portfolio,
            pop.user(Language::Chinese, 53).portfolio);
  EXPECT_EQ(pop.userCount(Language::English), 50u);
}

TEST(Population, RejectsEmptyPools) {
  EXPECT_THROW(PopulationModel(0, 10, 1), InvalidArgument);
}

// ---------------------------------------------------------------- profiles

TEST(Profiles, ElevenPaperServices) {
  const auto all = ServiceProfile::paperServices(0.01);
  ASSERT_EQ(all.size(), 11u);
  EXPECT_EQ(all[0].name, "Tianya");
  EXPECT_EQ(all[0].language, Language::Chinese);
  EXPECT_EQ(all[0].accounts, 309012u);  // 30,901,241 / 100
  // CSDN's length-8 policy, Singles' length cap (Table X discussion).
  const auto csdn = ServiceProfile::byName("CSDN", 0.01);
  EXPECT_EQ(csdn.minLen, 8u);
  const auto singles = ServiceProfile::byName("Singles", 0.01);
  EXPECT_EQ(singles.maxLen, 8u);
  EXPECT_EQ(singles.accounts, 3000u);  // floored at minAccounts
  EXPECT_THROW(ServiceProfile::byName("Nope"), InvalidArgument);
  EXPECT_THROW(ServiceProfile::paperServices(0.0), InvalidArgument);
}

// --------------------------------------------------------------- generator

class GeneratorShape : public ::testing::Test {
 protected:
  static constexpr double kScale = 0.001;
  PopulationModel pop_{30000, 30000, 1234};
  DatasetGenerator gen_{pop_, SurveyModel::paper(), 99};

  Dataset make(const std::string& name) {
    return gen_.generate(ServiceProfile::byName(name, kScale, 3000));
  }
};

TEST_F(GeneratorShape, DeterministicPerSeed) {
  const Dataset a = make("Yahoo");
  const Dataset b = make("Yahoo");
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.unique(), b.unique());
  a.forEach([&](std::string_view pw, std::uint64_t c) {
    EXPECT_EQ(b.frequency(pw), c);
  });
}

TEST_F(GeneratorShape, RespectsPolicies) {
  const Dataset csdn = make("CSDN");
  std::uint64_t shortMass = 0;
  csdn.forEach([&](std::string_view pw, std::uint64_t c) {
    if (pw.size() < 8) shortMass += c;  // legacy pre-policy accounts
    EXPECT_LE(pw.size(), 20u) << pw;
  });
  // CSDN's length >= 8 policy holds except for the ~2.2% legacy fraction
  // (Table X shows real CSDN keeping ~2.2% shorter passwords).
  const double shortFrac =
      static_cast<double>(shortMass) / static_cast<double>(csdn.total());
  EXPECT_LT(shortFrac, 0.05);
  EXPECT_GT(shortFrac, 0.005);
  const Dataset singles = make("Singles");
  singles.forEach([](std::string_view pw, std::uint64_t) {
    EXPECT_LE(pw.size(), 8u) << pw;   // Singles length <= 8
  });
}

TEST_F(GeneratorShape, ChineseDigitHeavyEnglishLetterHeavy) {
  const auto zh = compositionStats(make("Tianya"));
  const auto en = compositionStats(make("Rockyou"));
  // Table IX shape: Chinese digit-only share far exceeds English; English
  // lower-only share far exceeds Chinese.
  EXPECT_GT(zh.onlyDigits, 0.35);
  EXPECT_LT(en.onlyDigits, 0.25);
  EXPECT_GT(en.onlyLower, zh.onlyLower + 0.1);
  // Symbols are rare everywhere (Table IX).
  EXPECT_GT(zh.alnumOnly, 0.9);
  EXPECT_GT(en.alnumOnly, 0.9);
}

TEST_F(GeneratorShape, ZipfHead) {
  const Dataset ds = make("Tianya");
  const auto top = topK(ds, 10);
  // Table VIII: top-10 carries percent-level mass, rank 1 dominates.
  EXPECT_GT(top.headMass, 0.02);
  EXPECT_LT(top.headMass, 0.30);
  EXPECT_GT(top.entries[0].count, 2 * top.entries[9].count);
  // The rank-frequency head is roughly power-law.
  std::vector<std::uint64_t> freqs;
  for (const auto& e : ds.sortedByFrequency()) {
    freqs.push_back(e.count);
    if (freqs.size() >= 500) break;
  }
  const auto fit = fitZipf(freqs);
  EXPECT_GT(fit.exponent, 0.3);
  EXPECT_GT(fit.r2, 0.7);
}

TEST_F(GeneratorShape, SameLanguageOverlapExceedsCrossLanguage) {
  const Dataset tianya = make("Tianya");
  const Dataset weibo = make("Weibo");
  const Dataset rockyou = make("Rockyou");
  // Fig. 12: same-language services share more of their common passwords
  // than cross-language pairs. Compare at the f>=4 head where the ideal
  // meter is reliable.
  const double same = overlapFraction(tianya, weibo, 4);
  const double cross = overlapFraction(tianya, rockyou, 4);
  EXPECT_GT(same, cross);
  EXPECT_GT(same, 0.2);
}

TEST_F(GeneratorShape, LengthsConcentrateSixToTen) {
  const auto d = lengthDistribution(make("Rockyou"));
  double mass6to10 = 0;
  for (int len = 6; len <= 10; ++len) mass6to10 += d.exact[len - 6];
  EXPECT_GT(mass6to10, 0.6);  // Table X: most passwords are 6-10 chars
}

TEST_F(GeneratorShape, VerbatimReuseRateMatchesSurvey) {
  // Fraction of accounts whose password equals a portfolio item of *some*
  // user must be at least the verbatim-reuse rate the survey model
  // prescribes (modified passwords can coincide too, so >=).
  const auto profile = ServiceProfile::byName("Weibo", kScale, 3000);
  const Dataset ds = gen_.generate(profile);
  StringSet portfolioSet;
  for (std::size_t u = 0; u < 30000; ++u) {
    for (const auto& pw : pop_.user(Language::Chinese, u).portfolio) {
      portfolioSet.insert(pw);
    }
  }
  std::uint64_t reusedMass = 0;
  ds.forEach([&](std::string_view pw, std::uint64_t c) {
    if (portfolioSet.contains(pw)) reusedMass += c;
  });
  const double reuseRate =
      static_cast<double>(reusedMass) / static_cast<double>(ds.total());
  const SurveyModel survey = gen_.surveyFor(profile);
  EXPECT_GT(reuseRate, survey.reuseExact * 0.8);
  EXPECT_LT(reuseRate, 0.95);
}

TEST_F(GeneratorShape, SharedUsersCarryPasswordsAcrossServices) {
  // The mechanism fuzzyPSM exploits: a user's exact password shows up on
  // multiple same-language services.
  const Dataset a = make("Tianya");
  const Dataset b = make("Weibo");
  std::uint64_t sharedMass = 0;
  b.forEach([&](std::string_view pw, std::uint64_t c) {
    if (a.contains(pw)) sharedMass += c;
  });
  // Far more of Weibo's mass than its distinct-overlap suggests is old
  // passwords from the shared population.
  EXPECT_GT(static_cast<double>(sharedMass) /
                static_cast<double>(b.total()),
            0.15);
}

TEST_F(GeneratorShape, ModifyPasswordAltersButPreservesCore) {
  Rng rng(17);
  const Vocabulary vocab(Language::English);
  const auto profile = ServiceProfile::byName("Yahoo", kScale);
  int changed = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string base = "monkey";
    const std::string out = gen_.modifyPassword(base, profile, vocab, rng);
    EXPECT_TRUE(isValidPassword(out));
    if (out != base) ++changed;
  }
  // Capitalize-none / no-op rules keep some unchanged, but most change.
  EXPECT_GT(changed, 350);
}

}  // namespace
}  // namespace fpsm
