// Cross-module integration and randomized property tests.
//
// These exercise whole pipelines (generate -> split -> train -> serialize
// -> reload -> measure -> suggest -> crack) and check model-family
// invariants on randomized corpora:
//   - sampled strings are scoreable,
//   - enumerated guesses are emitted with their true score, ordered, and
//     their probabilities sum to at most 1,
//   - Monte Carlo guess numbers are monotone in probability,
//   - the whole pipeline is deterministic per seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/fuzzy_psm.h"
#include "core/suggest.h"
#include "corpus/dataset.h"
#include "corpus/io.h"
#include "meters/ideal/ideal.h"
#include "meters/markov/markov.h"
#include "meters/pcfg/pcfg.h"
#include "model/buckets.h"
#include "model/montecarlo.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace fpsm {
namespace {

/// A random small corpus: structured strings, skewed counts.
Dataset randomCorpus(std::uint64_t seed, int entries) {
  Rng rng(seed);
  const char* words[] = {"pass", "word", "drag", "on",  "mon",
                         "key",  "love", "sun", "sky", "blue"};
  Dataset ds("random-" + std::to_string(seed));
  for (int i = 0; i < entries; ++i) {
    std::string pw = words[rng.below(10)];
    if (rng.chance(0.6)) pw += words[rng.below(10)];
    if (rng.chance(0.7)) pw += std::to_string(rng.below(100));
    if (rng.chance(0.1)) pw += "!";
    if (rng.chance(0.15) && isLower(pw[0])) pw[0] = toUpper(pw[0]);
    ds.add(pw, 1 + rng.below(20));
  }
  return ds;
}

class ModelFamilyProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ModelFamilyProperty, EnumeratedMassIsAtMostOneAndOrdered) {
  const Dataset corpus = randomCorpus(GetParam(), 60);
  FuzzyPsm fuzzy;
  fuzzy.loadBaseDictionary(corpus);
  fuzzy.train(corpus);
  PcfgModel pcfg;
  pcfg.train(corpus);
  IdealMeter ideal(corpus);

  const ProbabilisticModel* models[] = {&fuzzy, &pcfg, &ideal};
  for (const ProbabilisticModel* m : models) {
    double mass = 0.0;
    double prev = 1.0;  // log2 cannot exceed 0
    std::uint64_t count = 0;
    m->enumerateGuesses(3000, [&](std::string_view, double lp) {
      EXPECT_LE(lp, prev + 1e-9) << m->name();
      prev = lp;
      mass += std::exp2(lp);
      ++count;
      return true;
    });
    EXPECT_GT(count, 0u) << m->name();
    EXPECT_LE(mass, 1.0 + 1e-6) << m->name();
  }
}

TEST_P(ModelFamilyProperty, SamplesAreScoreableAcrossModels) {
  const Dataset corpus = randomCorpus(GetParam() + 100, 50);
  FuzzyPsm fuzzy;
  fuzzy.loadBaseDictionary(corpus);
  fuzzy.train(corpus);
  PcfgModel pcfg;
  pcfg.train(corpus);
  MarkovModel markov;
  markov.train(corpus);

  Rng rng(GetParam());
  const ProbabilisticModel* models[] = {&fuzzy, &pcfg, &markov};
  for (const ProbabilisticModel* m : models) {
    for (int i = 0; i < 100; ++i) {
      const std::string s = m->sample(rng);
      EXPECT_FALSE(s.empty()) << m->name();
      EXPECT_TRUE(std::isfinite(m->log2Prob(s))) << m->name() << " " << s;
    }
  }
}

TEST_P(ModelFamilyProperty, MonteCarloMonotoneInProbability) {
  const Dataset corpus = randomCorpus(GetParam() + 200, 50);
  MarkovModel markov;
  markov.train(corpus);
  Rng rng(GetParam());
  const MonteCarloEstimator mc(markov, 4000, rng);
  double prevGuess = 0.0;
  for (double lp = -2.0; lp > -60.0; lp -= 4.0) {
    const double g = mc.guessNumber(lp);
    EXPECT_GE(g, prevGuess);
    prevGuess = g;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFamilyProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(Pipeline, GenerateTrainSerializeMeasureSuggestCrack) {
  // End-to-end flow mirroring the CLI tool, entirely through the library.
  PopulationModel population(5000, 5000, 77);
  DatasetGenerator generator(population, SurveyModel::paper(), 3);
  const Dataset base =
      generator.generate(ServiceProfile::byName("Rockyou", 0.0001, 2000));
  const Dataset training =
      generator.generate(ServiceProfile::byName("Phpbb", 0.004, 2000));

  FuzzyPsm psm;
  psm.loadBaseDictionary(base);
  psm.train(training);

  // Serialize through a stream and keep working with the clone.
  std::stringstream ss;
  psm.save(ss);
  const FuzzyPsm clone = FuzzyPsm::load(ss);

  // Measure: the training head must be weak, a random string strong.
  const auto head = training.sortedByFrequency().front().password;
  EXPECT_LT(clone.strengthBits(head), 15.0);
  EXPECT_EQ(classify(clone, head), StrengthBucket::Weak);
  EXPECT_TRUE(std::isinf(clone.strengthBits("zQ#9v!Lp2x@7")));

  // Suggest: strengthen the weak head within two edits.
  Rng rng(5);
  SuggestionConfig scfg;
  scfg.targetBits = 30.0;
  const auto suggestion = suggestStrongerPassword(clone, head, scfg, rng);
  ASSERT_TRUE(suggestion.has_value());
  EXPECT_GE(suggestion->bits, 30.0);

  // Crack: the clone's top guesses must include the training head early.
  bool cracked = false;
  std::uint64_t position = 0;
  clone.enumerateGuesses(50, [&](std::string_view g, double) {
    ++position;
    if (g == head) {
      cracked = true;
      return false;
    }
    return true;
  });
  EXPECT_TRUE(cracked);
  EXPECT_LE(position, 10u);
}

TEST(Pipeline, DatasetFileRoundTripThroughRealCorpus) {
  PopulationModel population(3000, 3000, 9);
  DatasetGenerator generator(population, SurveyModel::paper(), 4);
  const Dataset ds =
      generator.generate(ServiceProfile::byName("Faithwriters", 0.1, 900));
  std::stringstream file;
  saveDataset(ds, file);
  Dataset back;
  loadDataset(file, back);
  EXPECT_EQ(back.total(), ds.total());
  EXPECT_EQ(back.unique(), ds.unique());
}

TEST(Pipeline, DeterministicAcrossRuns) {
  auto run = [] {
    PopulationModel population(2000, 2000, 123);
    DatasetGenerator generator(population, SurveyModel::paper(), 456);
    const Dataset training =
        generator.generate(ServiceProfile::byName("Yahoo", 0.002, 1500));
    FuzzyPsm psm;
    psm.loadBaseDictionary(training);
    psm.train(training);
    std::vector<std::string> guesses;
    psm.enumerateGuesses(20, [&](std::string_view g, double) {
      guesses.emplace_back(g);
      return true;
    });
    return guesses;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace fpsm
