// Failure-injection tests for the serialization formats: every truncation
// and every single-line corruption of a valid grammar/model file must
// raise IoError (or load an equivalent model) — never crash, hang, or
// silently mis-load.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/fuzzy_psm.h"
#include "corpus/dataset.h"
#include "meters/markov/markov.h"
#include "meters/pcfg/pcfg.h"
#include "util/chars.h"
#include "util/error.h"
#include "util/rng.h"

namespace fpsm {
namespace {

Dataset smallCorpus() {
  Dataset ds;
  ds.add("password1", 5);
  ds.add("Dr@gon99", 2);
  ds.add("abc 123", 1);
  return ds;
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

/// Loads with `loader`; success or IoError are both acceptable outcomes,
/// anything else (crash, other exception) fails the test.
template <typename Loader>
void expectGracefulLoad(const std::string& payload, Loader&& loader) {
  std::stringstream in(payload);
  try {
    loader(in);
  } catch (const IoError&) {
    // corrupted input correctly rejected
  } catch (const std::invalid_argument&) {
    // std::stoi family on a mangled numeric field — acceptable rejection
  } catch (const std::out_of_range&) {
    // ditto for overflowing numeric fields
  }
}

// ----------------------------------------------------------------- fuzzy

TEST(SerializationFuzz, FuzzyGrammarTruncations) {
  FuzzyPsm psm;
  psm.addBaseWord("password");
  psm.train(smallCorpus());
  std::stringstream full;
  psm.save(full);
  const auto lines = splitLines(full.str());
  ASSERT_GT(lines.size(), 10u);

  for (std::size_t keep = 0; keep < lines.size(); ++keep) {
    std::string payload;
    for (std::size_t i = 0; i < keep; ++i) payload += lines[i] + "\n";
    expectGracefulLoad(payload,
                       [](std::istream& in) { FuzzyPsm::load(in); });
  }
}

TEST(SerializationFuzz, FuzzyGrammarLineCorruption) {
  FuzzyPsm psm;
  psm.addBaseWord("password");
  psm.train(smallCorpus());
  std::stringstream full;
  psm.save(full);
  const auto lines = splitLines(full.str());

  for (std::size_t corrupt = 0; corrupt < lines.size(); ++corrupt) {
    std::string payload;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      payload += (i == corrupt ? "###garbage###" : lines[i]);
      payload += "\n";
    }
    expectGracefulLoad(payload,
                       [](std::istream& in) { FuzzyPsm::load(in); });
  }
}

// ------------------------------------------------------------------ pcfg

TEST(SerializationFuzz, PcfgTruncations) {
  PcfgModel model;
  model.train(smallCorpus());
  std::stringstream full;
  model.save(full);
  const auto lines = splitLines(full.str());
  for (std::size_t keep = 0; keep < lines.size(); ++keep) {
    std::string payload;
    for (std::size_t i = 0; i < keep; ++i) payload += lines[i] + "\n";
    expectGracefulLoad(payload,
                       [](std::istream& in) { PcfgModel::load(in); });
  }
}

// ---------------------------------------------------------------- markov

TEST(SerializationFuzz, MarkovTruncationsAndCorruption) {
  MarkovConfig cfg;
  cfg.order = 2;
  MarkovModel model(cfg);
  model.train(smallCorpus());
  std::stringstream full;
  model.save(full);
  const auto lines = splitLines(full.str());
  // Truncations (sampled stride keeps the sweep fast on big files).
  for (std::size_t keep = 0; keep < lines.size();
       keep += std::max<std::size_t>(1, lines.size() / 40)) {
    std::string payload;
    for (std::size_t i = 0; i < keep; ++i) payload += lines[i] + "\n";
    expectGracefulLoad(payload,
                       [](std::istream& in) { MarkovModel::load(in); });
  }
  // Corrupt the config line specifically.
  {
    std::string payload = lines[0] + "\nconfig\tbroken\n";
    expectGracefulLoad(payload,
                       [](std::istream& in) { MarkovModel::load(in); });
  }
}

// -------------------------------------------- round-trip property sweep

// Randomized trained grammars for the round-trip property tests: random
// config (reverse rule, prior, run-retry), random base dictionary, and a
// training stream mixing exact base words, capitalized/leet/reversed
// variants, suffixed forms, and pure fallback strings — every production
// type the serializer must carry.
FuzzyPsm randomTrainedGrammar(Rng& rng) {
  FuzzyConfig cfg;
  cfg.matchReverse = rng.chance(0.5);
  cfg.retryTrieInsideRuns = rng.chance(0.3);
  cfg.transformationPrior = rng.chance(0.5) ? 0.5 : 0.0;
  FuzzyPsm psm(cfg);

  const std::string letters = "abcdefgiostz";
  const std::string digits = "0123456789";
  auto randomWord = [&](std::size_t minLen, std::size_t maxLen) {
    std::string w;
    const std::size_t len = minLen + rng.below(maxLen - minLen + 1);
    for (std::size_t i = 0; i < len; ++i) {
      w.push_back(letters[rng.below(letters.size())]);
    }
    return w;
  };

  std::vector<std::string> baseWords;
  const std::size_t nBase = 8 + rng.below(16);
  for (std::size_t i = 0; i < nBase; ++i) {
    baseWords.push_back(randomWord(3, 9));
    psm.addBaseWord(baseWords.back());
  }

  const std::size_t nTraining = 40 + rng.below(60);
  for (std::size_t i = 0; i < nTraining; ++i) {
    std::string pw;
    if (rng.chance(0.7)) {
      pw = baseWords[rng.below(baseWords.size())];
      if (rng.chance(0.3)) pw[0] = toUpper(pw[0]);
      for (char& c : pw) {
        if (rng.chance(0.15)) {
          if (const auto partner = leetPartner(c)) c = *partner;
        }
      }
      if (rng.chance(0.25)) {
        std::reverse(pw.begin(), pw.end());
      }
      if (rng.chance(0.5)) {
        const std::size_t nSuffix = 1 + rng.below(4);
        for (std::size_t d = 0; d < nSuffix; ++d) {
          pw.push_back(digits[rng.below(digits.size())]);
        }
      }
    } else {
      pw = randomWord(3, 8);  // likely a PCFG-fallback span
      if (rng.chance(0.4)) pw += std::to_string(rng.below(10000));
      if (rng.chance(0.2)) pw += "!";
    }
    psm.update(pw, 1 + rng.below(9));
  }
  return psm;
}

std::string saved(const FuzzyPsm& psm) {
  std::stringstream ss;
  psm.save(ss);
  return ss.str();
}

TEST(SerializationRoundTrip, SaveLoadSaveIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const FuzzyPsm psm = randomTrainedGrammar(rng);
    const std::string first = saved(psm);
    std::stringstream in(first);
    const FuzzyPsm back = FuzzyPsm::load(in);
    EXPECT_EQ(saved(back), first) << "seed " << seed;
  }
}

TEST(SerializationRoundTrip, ScoresAgreeOnRandomPasswords) {
  Rng rng(99);
  const FuzzyPsm psm = randomTrainedGrammar(rng);
  std::stringstream ss(saved(psm));
  const FuzzyPsm back = FuzzyPsm::load(ss);

  // 1k probes drawn from the same generator family as training (plus raw
  // random strings), so both in-grammar and zero-probability paths hit.
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789@$!#";
  for (int i = 0; i < 1000; ++i) {
    std::string pw;
    const std::size_t len = 1 + rng.below(14);
    for (std::size_t c = 0; c < len; ++c) {
      pw.push_back(alphabet[rng.below(alphabet.size())]);
    }
    // EXPECT_EQ, not NEAR: load reconstructs the identical integer counts,
    // so the float computation must be bit-for-bit the same (covers the
    // -infinity case too).
    EXPECT_EQ(back.log2Prob(pw), psm.log2Prob(pw)) << pw;
  }
}

// ------------------------------------------------------- round-trip sanity

TEST(SerializationFuzz, UncorruptedFilesStillLoad) {
  // Guard against the fuzz helpers masking a broken happy path.
  FuzzyPsm psm;
  psm.addBaseWord("password");
  psm.train(smallCorpus());
  std::stringstream ss;
  psm.save(ss);
  const FuzzyPsm back = FuzzyPsm::load(ss);
  EXPECT_NEAR(back.log2Prob("password1"), psm.log2Prob("password1"), 1e-12);
}

}  // namespace
}  // namespace fpsm
