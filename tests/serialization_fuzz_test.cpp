// Failure-injection tests for the serialization formats: every truncation
// and every single-line corruption of a valid grammar/model file must
// raise IoError (or load an equivalent model) — never crash, hang, or
// silently mis-load.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/fuzzy_psm.h"
#include "corpus/dataset.h"
#include "meters/markov/markov.h"
#include "meters/pcfg/pcfg.h"
#include "util/error.h"

namespace fpsm {
namespace {

Dataset smallCorpus() {
  Dataset ds;
  ds.add("password1", 5);
  ds.add("Dr@gon99", 2);
  ds.add("abc 123", 1);
  return ds;
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

/// Loads with `loader`; success or IoError are both acceptable outcomes,
/// anything else (crash, other exception) fails the test.
template <typename Loader>
void expectGracefulLoad(const std::string& payload, Loader&& loader) {
  std::stringstream in(payload);
  try {
    loader(in);
  } catch (const IoError&) {
    // corrupted input correctly rejected
  } catch (const std::invalid_argument&) {
    // std::stoi family on a mangled numeric field — acceptable rejection
  } catch (const std::out_of_range&) {
    // ditto for overflowing numeric fields
  }
}

// ----------------------------------------------------------------- fuzzy

TEST(SerializationFuzz, FuzzyGrammarTruncations) {
  FuzzyPsm psm;
  psm.addBaseWord("password");
  psm.train(smallCorpus());
  std::stringstream full;
  psm.save(full);
  const auto lines = splitLines(full.str());
  ASSERT_GT(lines.size(), 10u);

  for (std::size_t keep = 0; keep < lines.size(); ++keep) {
    std::string payload;
    for (std::size_t i = 0; i < keep; ++i) payload += lines[i] + "\n";
    expectGracefulLoad(payload,
                       [](std::istream& in) { FuzzyPsm::load(in); });
  }
}

TEST(SerializationFuzz, FuzzyGrammarLineCorruption) {
  FuzzyPsm psm;
  psm.addBaseWord("password");
  psm.train(smallCorpus());
  std::stringstream full;
  psm.save(full);
  const auto lines = splitLines(full.str());

  for (std::size_t corrupt = 0; corrupt < lines.size(); ++corrupt) {
    std::string payload;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      payload += (i == corrupt ? "###garbage###" : lines[i]);
      payload += "\n";
    }
    expectGracefulLoad(payload,
                       [](std::istream& in) { FuzzyPsm::load(in); });
  }
}

// ------------------------------------------------------------------ pcfg

TEST(SerializationFuzz, PcfgTruncations) {
  PcfgModel model;
  model.train(smallCorpus());
  std::stringstream full;
  model.save(full);
  const auto lines = splitLines(full.str());
  for (std::size_t keep = 0; keep < lines.size(); ++keep) {
    std::string payload;
    for (std::size_t i = 0; i < keep; ++i) payload += lines[i] + "\n";
    expectGracefulLoad(payload,
                       [](std::istream& in) { PcfgModel::load(in); });
  }
}

// ---------------------------------------------------------------- markov

TEST(SerializationFuzz, MarkovTruncationsAndCorruption) {
  MarkovConfig cfg;
  cfg.order = 2;
  MarkovModel model(cfg);
  model.train(smallCorpus());
  std::stringstream full;
  model.save(full);
  const auto lines = splitLines(full.str());
  // Truncations (sampled stride keeps the sweep fast on big files).
  for (std::size_t keep = 0; keep < lines.size();
       keep += std::max<std::size_t>(1, lines.size() / 40)) {
    std::string payload;
    for (std::size_t i = 0; i < keep; ++i) payload += lines[i] + "\n";
    expectGracefulLoad(payload,
                       [](std::istream& in) { MarkovModel::load(in); });
  }
  // Corrupt the config line specifically.
  {
    std::string payload = lines[0] + "\nconfig\tbroken\n";
    expectGracefulLoad(payload,
                       [](std::istream& in) { MarkovModel::load(in); });
  }
}

// ------------------------------------------------------- round-trip sanity

TEST(SerializationFuzz, UncorruptedFilesStillLoad) {
  // Guard against the fuzz helpers masking a broken happy path.
  FuzzyPsm psm;
  psm.addBaseWord("password");
  psm.train(smallCorpus());
  std::stringstream ss;
  psm.save(ss);
  const FuzzyPsm back = FuzzyPsm::load(ss);
  EXPECT_NEAR(back.log2Prob("password1"), psm.log2Prob("password1"), 1e-12);
}

}  // namespace
}  // namespace fpsm
