#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/fuzzy_parse.h"
#include "core/fuzzy_psm.h"
#include "corpus/dataset.h"
#include "util/error.h"
#include "util/rng.h"

namespace fpsm {
namespace {

FuzzyConfig mleConfig() {
  FuzzyConfig c;
  c.transformationPrior = 0.0;  // pure maximum likelihood (paper examples)
  return c;
}

FuzzyPsm paperishGrammar(FuzzyConfig cfg = mleConfig()) {
  FuzzyPsm psm(cfg);
  for (const char* w :
       {"password", "p@ssword", "123456", "123qwe", "dragon",
        "password123"}) {
    psm.addBaseWord(w);
  }
  return psm;
}

// ------------------------------------------------------------------ parsing

TEST(FuzzyParse, ExactBaseWordIsOneSegment) {
  auto psm = paperishGrammar();
  const auto p = psm.parse("password123");
  // password123 is itself a base word -> single B11 segment, no
  // transformation (paper Sec. IV-C example).
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_EQ(p.structure, "B11");
  EXPECT_EQ(p.segments[0].base, "password123");
  EXPECT_TRUE(p.segments[0].fromTrie);
  EXPECT_FALSE(p.segments[0].capitalized);
  for (const auto& site : p.segments[0].leetSites) {
    EXPECT_FALSE(site.transformed);
  }
}

TEST(FuzzyParse, CapitalizationDetected) {
  auto psm = paperishGrammar();
  const auto p = psm.parse("Password123");
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_EQ(p.structure, "B11");
  EXPECT_EQ(p.segments[0].base, "password123");
  EXPECT_TRUE(p.segments[0].capitalized);
}

TEST(FuzzyParse, LeetDetected) {
  auto psm = paperishGrammar();
  // p@ssw0rd: base p@ssword with o->0 (paper example).
  const auto p = psm.parse("p@ssw0rd");
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_EQ(p.structure, "B8");
  EXPECT_EQ(p.segments[0].base, "p@ssword");
  EXPECT_FALSE(p.segments[0].capitalized);
  // Sites of p@ssword: '@'(L1), 's'(L2), 's'(L2), 'o'(L3) -> only the 'o'
  // is transformed.
  ASSERT_EQ(p.segments[0].leetSites.size(), 4u);
  EXPECT_EQ(p.segments[0].leetSites[0].rule, 0);
  EXPECT_FALSE(p.segments[0].leetSites[0].transformed);
  EXPECT_EQ(p.segments[0].leetSites[3].rule, 2);
  EXPECT_TRUE(p.segments[0].leetSites[3].transformed);
}

TEST(FuzzyParse, ConcatenationByLongestPrefix) {
  FuzzyPsm psm(mleConfig());
  psm.addBaseWord("123qwe");
  const auto p = psm.parse("123qwe123qwe");
  // 123qwe123qwe not in trie -> B6 B6 (paper example).
  ASSERT_EQ(p.segments.size(), 2u);
  EXPECT_EQ(p.structure, "B6B6");
  EXPECT_EQ(p.segments[0].base, "123qwe");
  EXPECT_EQ(p.segments[1].base, "123qwe");
}

TEST(FuzzyParse, WholeWordPreferredOverPrefix) {
  auto psm = paperishGrammar();
  // password123 in trie: longest prefix wins over password + 123.
  const auto p = psm.parse("password123");
  EXPECT_EQ(p.structure, "B11");
}

TEST(FuzzyParse, FallbackToLdsRuns) {
  auto psm = paperishGrammar();
  // tyxdqd123 unparseable by the trie -> B6 B3 (paper example).
  const auto p = psm.parse("tyxdqd123");
  ASSERT_EQ(p.segments.size(), 2u);
  EXPECT_EQ(p.structure, "B6B3");
  EXPECT_EQ(p.segments[0].base, "tyxdqd");
  EXPECT_FALSE(p.segments[0].fromTrie);
  EXPECT_EQ(p.segments[1].base, "123");
  // '1' (i<->1) and '3' (e<->3) are leet-capable: two untransformed sites.
  ASSERT_EQ(p.segments[1].leetSites.size(), 2u);
  EXPECT_EQ(p.segments[1].leetSites[0].rule, 3);
  EXPECT_FALSE(p.segments[1].leetSites[0].transformed);
  EXPECT_EQ(p.segments[1].leetSites[1].rule, 4);
  EXPECT_FALSE(p.segments[1].leetSites[1].transformed);
}

TEST(FuzzyParse, MixedTrieAndFallback) {
  auto psm = paperishGrammar();
  const auto p = psm.parse("xyzpassword");  // letters run, no trie prefix
  // Fallback consumes the full letter run (paper semantics,
  // retryTrieInsideRuns = false).
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_EQ(p.segments[0].base, "xyzpassword");

  FuzzyConfig cfg = mleConfig();
  cfg.retryTrieInsideRuns = true;
  FuzzyPsm retry(cfg);
  retry.addBaseWord("password");
  const auto p2 = retry.parse("xyzpassword");
  ASSERT_EQ(p2.segments.size(), 2u);
  EXPECT_EQ(p2.segments[0].base, "xyz");
  EXPECT_EQ(p2.segments[1].base, "password");
}

TEST(FuzzyParse, SegmentsTileThePassword) {
  auto psm = paperishGrammar();
  for (const char* pw :
       {"password123", "P@ssw0rd!", "tyxdqd123", "123qwe123qwe",
        "a1b2c3d4", "Dragon2015", "!!!", "x"}) {
    const auto p = psm.parse(pw);
    std::string rebuilt;
    for (const auto& seg : p.segments) {
      rebuilt += renderSegment(seg.base, seg.capitalized, seg.leetSites);
    }
    EXPECT_EQ(rebuilt, pw) << "parse must be lossless";
  }
}

TEST(FuzzyParse, ShortBaseWordsRejected) {
  FuzzyPsm psm;
  psm.addBaseWord("ab");  // below minBaseWordLen = 3
  EXPECT_EQ(psm.baseDictionary().size(), 0u);
  psm.addBaseWord("abc");
  EXPECT_EQ(psm.baseDictionary().size(), 1u);
}

TEST(FuzzyParse, InvalidPasswordThrows) {
  auto psm = paperishGrammar();
  EXPECT_THROW(psm.parse(""), InvalidArgument);
}

// ----------------------------------------------------------- worked example

TEST(FuzzyPsm, WorkedExampleProbability) {
  // Reconstruct the flavor of the paper's Fig. 11 derivation of
  // "p@ssw0rd1" = B8 B1 with counts we control exactly.
  auto psm = paperishGrammar();
  // Training: 6x "password1" (B8 B1: base password + fallback digit 1),
  // 2x "p@ssword1", 1x "p@ssw0rd1", 1x "dragon" (B6).
  psm.update("password1", 6);
  psm.update("p@ssword1", 2);
  psm.update("p@ssw0rd1", 1);
  psm.update("dragon", 1);

  // Structures: B8B1 x9, B6 x1.
  EXPECT_NEAR(psm.structures().probability("B8B1"), 0.9, 1e-12);
  // B8 table: password x6, p@ssword x3.
  const auto* b8 = psm.segmentTable(8);
  ASSERT_NE(b8, nullptr);
  EXPECT_NEAR(b8->probability("p@ssword"), 3.0 / 9.0, 1e-12);
  // Capitalization never used: 0 of 19 segments.
  EXPECT_EQ(psm.capitalizeYesProb(), 0.0);

  // Leet sites per training occurrence (rule o<->0 is index 2):
  //   password1: a,s,s,o + 1        -> one 'o' site, untransformed
  //   p@ssword1: @,s,s,o + 1        -> one 'o' site, untransformed
  //   p@ssw0rd1: @,s,s,0 + 1        -> one 'o' site, TRANSFORMED
  //   dragon:    a,o                -> one 'o' site, untransformed
  // Rule L3 (o<->0): 6 + 2 + 1 + 1 = 10 sites, 1 transformed.
  EXPECT_NEAR(psm.leetYesProb(2), 0.1, 1e-12);
  // Rule L1 (a<->@): 10 sites (a in password x6, dragon x1; @ in the
  // p@ss forms x3), 0 transformed (the @ forms are base forms).
  EXPECT_NEAR(psm.leetYesProb(0), 0.0, 1e-12);

  // Hand-computed probability of "p@ssw0rd1" (the paper's Fig. 11 shape):
  //   P(S->B8B1)=0.9, P(B8->p@ssword)=3/9, P(B1->1)=1,
  //   seg1: cap no (1.0), L1 no (1.0), L2 no (1.0) twice, L3 yes (0.1)
  //   seg2: cap no (1.0), L4 no (1.0), all its sites untransformed
  const double expected =
      std::log2(0.9) + std::log2(3.0 / 9.0) + std::log2(0.1);
  EXPECT_NEAR(psm.log2Prob("p@ssw0rd1"), expected, 1e-9);
}

TEST(FuzzyPsm, CapitalizationFactorsApply) {
  auto psm = paperishGrammar();
  psm.update("password1", 8);
  psm.update("Password1", 2);
  // 20 segments total, 2 capitalized.
  EXPECT_NEAR(psm.capitalizeYesProb(), 0.1, 1e-12);
  // P(Password1)/P(password1) = capYes/capNo (same base, same leet).
  const double ratio =
      psm.log2Prob("Password1") - psm.log2Prob("password1");
  EXPECT_NEAR(ratio, std::log2(0.1 / 0.9), 1e-9);
}

TEST(FuzzyPsm, UnseenStructureOrSegmentIsZero) {
  auto psm = paperishGrammar();
  psm.update("password1", 5);
  EXPECT_TRUE(std::isinf(psm.log2Prob("dragon")));        // B6 unseen
  EXPECT_TRUE(std::isinf(psm.log2Prob("password12")));    // B8B2 unseen
}

TEST(FuzzyPsm, NotTrainedThrows) {
  auto psm = paperishGrammar();
  EXPECT_THROW(psm.log2Prob("password1"), NotTrained);
  Rng rng(1);
  EXPECT_THROW(psm.sample(rng), NotTrained);
}

// ---------------------------------------------------------------- adaptivity

TEST(FuzzyPsm, UpdatePhaseIsAdaptive) {
  auto psm = paperishGrammar();
  psm.update("password1", 10);
  psm.update("dragon123", 1);
  const double before = psm.log2Prob("dragon123");
  for (int i = 0; i < 30; ++i) psm.update("dragon123");
  EXPECT_GT(psm.log2Prob("dragon123"), before);
}

TEST(FuzzyPsm, TrainMatchesRepeatedUpdate) {
  Dataset ds;
  ds.add("password1", 4);
  ds.add("Dragon99", 2);
  auto a = paperishGrammar();
  a.train(ds);
  auto b = paperishGrammar();
  ds.forEach([&](std::string_view pw, std::uint64_t c) { b.update(pw, c); });
  for (const char* probe : {"password1", "Dragon99", "p@ssword1"}) {
    EXPECT_DOUBLE_EQ(a.log2Prob(probe), b.log2Prob(probe)) << probe;
  }
  EXPECT_EQ(a.trainedPasswords(), 6u);
}

// ------------------------------------------------------------------ sampling

TEST(FuzzyPsm, SampleScoresMatchDerivation) {
  FuzzyConfig cfg;  // default prior keeps transformations reachable
  auto psm = paperishGrammar(cfg);
  psm.update("password1", 20);
  psm.update("p@ssword1", 5);
  psm.update("Password123", 5);
  psm.update("123qwe", 10);
  psm.update("dragon2", 3);
  Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    const std::string s = psm.sample(rng);
    EXPECT_TRUE(std::isfinite(psm.log2Prob(s))) << s;
  }
}

TEST(FuzzyPsm, SampleEmpiricalMatchesModel) {
  auto psm = paperishGrammar();
  psm.update("password1", 9);
  psm.update("dragon", 1);
  Rng rng(33);
  int hits = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (psm.sample(rng) == "password1") ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws),
              std::exp2(psm.log2Prob("password1")), 0.02);
}

// --------------------------------------------------------------- enumeration

TEST(FuzzyPsm, EnumerationDecreasingAndScoreable) {
  auto psm = paperishGrammar(FuzzyConfig{});
  psm.update("password1", 10);
  psm.update("p@ssword1", 3);
  psm.update("123qwe123qwe", 4);
  psm.update("dragon99", 2);
  std::vector<std::string> guesses;
  std::vector<double> lps;
  psm.enumerateGuesses(2000, [&](std::string_view g, double lp) {
    guesses.emplace_back(g);
    lps.push_back(lp);
    return true;
  });
  ASSERT_GT(guesses.size(), 10u);
  for (std::size_t i = 1; i < lps.size(); ++i) {
    EXPECT_LE(lps[i], lps[i - 1] + 1e-9);
  }
  // All trained passwords appear.
  for (const char* pw :
       {"password1", "p@ssword1", "123qwe123qwe", "dragon99"}) {
    EXPECT_NE(std::find(guesses.begin(), guesses.end(), pw), guesses.end())
        << pw;
  }
  EXPECT_EQ(guesses.front(), "password1");
  // No duplicate strings.
  auto sorted = guesses;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(FuzzyPsm, EnumerationIncludesTransformedVariants) {
  auto psm = paperishGrammar(FuzzyConfig{});
  psm.update("password1", 20);
  psm.update("Password1", 1);  // make cap observable
  bool sawCap = false;
  psm.enumerateGuesses(500, [&](std::string_view g, double) {
    if (g == "Password1") sawCap = true;
    return true;
  });
  EXPECT_TRUE(sawCap);
}

// ----------------------------------------------------------- differential

// The measuring contract: log2Prob(pw) IS the probability of the canonical
// derivation, for every password shape the grammar can produce — trie hits,
// capitalized/leet/reversed variants, multi-segment concatenations, and
// PCFG-fallback spans (the paper's tyxdqd123). Guards the equivalence when
// either path is later optimized or cached independently (the serving
// layer's score cache already relies on it).
TEST(FuzzyPsm, DifferentialDerivationEqualsLog2Prob) {
  FuzzyConfig cfg;
  cfg.matchReverse = true;  // widest rule set
  FuzzyPsm psm(cfg);
  for (const char* w :
       {"password", "p@ssword", "123456", "123qwe", "dragon", "monkey",
        "iloveyou", "secret"}) {
    psm.addBaseWord(w);
  }

  // Synthesized corpus: every transformation the grammar models, plus
  // fallback-only strings and mixtures.
  const std::vector<std::pair<const char*, std::uint64_t>> corpus = {
      {"password1", 9},     {"Password1", 2},   {"p@ssw0rd", 3},
      {"P@ssw0rd123", 1},   {"drowssap", 2},    {"Dragon99", 4},
      {"m0nkey", 2},        {"123qwe123qwe", 3}, {"tyxdqd123", 2},
      {"iloveyou520", 5},   {"terces!", 1},     {"s3cret", 2},
      {"zxywvu!!", 1},      {"123456", 12},     {"654321secret", 1},
  };
  for (const auto& [pw, n] : corpus) psm.update(pw, n);

  std::vector<std::string> probes;
  for (const auto& [pw, n] : corpus) {
    (void)n;
    probes.emplace_back(pw);
  }
  // Unseen variants exercise the zero-probability branches of both paths.
  for (const char* pw : {"PASSword1", "p@$$w0rd", "0000000", "secretsecret"}) {
    probes.emplace_back(pw);
  }

  for (const auto& pw : probes) {
    const FuzzyParse parsed = psm.parse(pw);
    const double viaDerivation = psm.derivationLog2Prob(parsed);
    const double viaMeter = psm.log2Prob(pw);
    // Exact equality: identical counts feed both computations.
    EXPECT_EQ(viaDerivation, viaMeter) << pw;
    // And the parse really is canonical: re-rendering its segments
    // reproduces the password.
    std::string rebuilt;
    for (const auto& seg : parsed.segments) {
      rebuilt += renderSegment(seg.base, seg.capitalized, seg.leetSites,
                               seg.reversed);
    }
    EXPECT_EQ(rebuilt, pw);
  }
}

// ------------------------------------------------------------- serialization

TEST(FuzzyPsm, SaveLoadRoundTrip) {
  auto psm = paperishGrammar(FuzzyConfig{});
  psm.update("password1", 6);
  psm.update("P@ssw0rd!", 2);
  psm.update("123qwe123qwe", 3);
  std::stringstream ss;
  psm.save(ss);
  FuzzyPsm back = FuzzyPsm::load(ss);
  EXPECT_EQ(back.trainedPasswords(), psm.trainedPasswords());
  EXPECT_EQ(back.baseDictionary().size(), psm.baseDictionary().size());
  for (const char* probe :
       {"password1", "P@ssw0rd!", "123qwe123qwe", "Password1",
        "p@ssword1", "zzz"}) {
    const double a = psm.log2Prob(probe);
    const double b = back.log2Prob(probe);
    if (std::isinf(a)) {
      EXPECT_TRUE(std::isinf(b)) << probe;
    } else {
      EXPECT_NEAR(a, b, 1e-12) << probe;
    }
  }
}

TEST(FuzzyPsm, LoadRejectsGarbage) {
  std::stringstream ss("not-a-grammar\n");
  EXPECT_THROW(FuzzyPsm::load(ss), IoError);
}

// --------------------------------------------------------- config behaviour

TEST(FuzzyConfigTest, LeetMatchingCanBeDisabled) {
  FuzzyConfig cfg = mleConfig();
  cfg.matchLeet = false;
  FuzzyPsm psm(cfg);
  psm.addBaseWord("password");
  const auto p = psm.parse("p@ssw0rd");
  // Without leet matching the trie cannot match; falls back to runs.
  EXPECT_GT(p.segments.size(), 1u);
  EXPECT_FALSE(p.segments[0].fromTrie);
}

TEST(FuzzyConfigTest, CapMatchingCanBeDisabled) {
  FuzzyConfig cfg = mleConfig();
  cfg.matchCapitalization = false;
  FuzzyPsm psm(cfg);
  psm.addBaseWord("password");
  const auto p = psm.parse("Password");
  EXPECT_FALSE(p.segments[0].fromTrie);
}

TEST(FuzzyParse, AdversarialLeetDenseTrieCompletesQuickly) {
  // A trie dense in strings over a leet pair would make the fuzzy DFS
  // branch on every character; the node budget must keep parsing bounded.
  FuzzyPsm psm(mleConfig());
  // All {a,@}-strings of length 6: 64 words, every prefix branches.
  for (int mask = 0; mask < 64; ++mask) {
    std::string w;
    for (int b = 0; b < 6; ++b) w.push_back((mask >> b) & 1 ? '@' : 'a');
    psm.addBaseWord(w);
  }
  const std::string adversarial(64, 'a');
  const auto p = psm.parse(adversarial);  // must not blow up
  std::string rebuilt;
  for (const auto& seg : p.segments) {
    rebuilt += renderSegment(seg.base, seg.capitalized, seg.leetSites,
                             seg.reversed);
  }
  EXPECT_EQ(rebuilt, adversarial);
}

TEST(FuzzyConfigTest, InvalidConfigRejected) {
  FuzzyConfig cfg;
  cfg.minBaseWordLen = 0;
  EXPECT_THROW(FuzzyPsm{cfg}, InvalidArgument);
  FuzzyConfig neg;
  neg.transformationPrior = -1.0;
  EXPECT_THROW(FuzzyPsm{neg}, InvalidArgument);
}

}  // namespace
}  // namespace fpsm
