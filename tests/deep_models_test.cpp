// Deeper model-level verification:
//   - the paper's Eq. (4) construction: a meter that perturbs the ideal
//     meter's probabilities without changing the order is indistinguishable
//     under rank correlation (the "practically ideal meter" definition);
//   - PCFG enumeration is complete and mass-exact on finite grammars;
//   - Markov log2Prob factorizes exactly into conditionalProb terms;
//   - fuzzy enumeration agrees with measuring on canonical derivations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "core/fuzzy_psm.h"
#include "corpus/dataset.h"
#include "meters/markov/markov.h"
#include "meters/pcfg/pcfg.h"
#include "stats/correlation.h"
#include "util/rng.h"

namespace fpsm {
namespace {

// ----------------------------------------------- paper Eq. (4) construction

TEST(PracticallyIdealMeter, Eq4PerturbationPreservesRanking) {
  // M1 = the ideal probabilities (descending). M2 moves probability mass
  // between pw1 and pw2 exactly as the paper's Eq. (4): M2(pw1) = M1(pw1)
  // + (M1(pw2)-M1(pw3))/2, M2(pw2) = M1(pw2) - (M1(pw2)-M1(pw3))/2.
  const std::vector<double> m1 = {0.4, 0.25, 0.15, 0.12, 0.08};
  std::vector<double> m2 = m1;
  const double delta = (m1[1] - m1[2]) / 2.0;
  m2[0] = m1[0] + delta;
  m2[1] = m1[1] - delta;

  // Still a probability distribution...
  double sum = 0;
  for (double p : m2) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // ...still sorted the same way...
  EXPECT_TRUE(std::is_sorted(m2.rbegin(), m2.rend()));
  // ...and perfectly rank-correlated with the ideal: the two meters are
  // indistinguishable under the paper's guess-number security model.
  EXPECT_NEAR(kendallTauB(m1, m2), 1.0, 1e-12);
  EXPECT_NEAR(spearmanRho(m1, m2), 1.0, 1e-12);
}

// ------------------------------------------------- PCFG exact completeness

TEST(PcfgExactness, EnumerationIsCompleteAndMassExact) {
  // Small grammar: structures L4D2 and D2, finite cross-product.
  Dataset ds;
  ds.add("pass12", 4);  // L4 D2
  ds.add("word34", 2);
  ds.add("pass34", 0);  // never seen; should still be generated (cross)
  ds.add("99", 3);      // D2
  PcfgModel model;
  model.train(ds);

  // Expected language: structure L4D2 (6/9) with L4 in {pass:4, word:2},
  // D2 in {12:4, 34:2, 99:3}; structure D2 (3/9) with the same D2 table.
  std::map<std::string, double> expected;
  const double pL4D2 = 6.0 / 9.0, pD2 = 3.0 / 9.0;
  const std::vector<std::pair<std::string, double>> l4 = {{"pass", 4.0 / 6},
                                                          {"word", 2.0 / 6}};
  const std::vector<std::pair<std::string, double>> d2 = {
      {"12", 4.0 / 9}, {"34", 2.0 / 9}, {"99", 3.0 / 9}};
  for (const auto& [lw, lp] : l4) {
    for (const auto& [dw, dp] : d2) {
      expected[lw + dw] = pL4D2 * lp * dp;
    }
  }
  for (const auto& [dw, dp] : d2) expected[dw] = pD2 * dp;

  std::map<std::string, double> enumerated;
  model.enumerateGuesses(1000, [&](std::string_view g, double lp) {
    enumerated[std::string(g)] = std::exp2(lp);
    return true;
  });
  ASSERT_EQ(enumerated.size(), expected.size());
  double mass = 0.0;
  for (const auto& [pw, p] : expected) {
    ASSERT_TRUE(enumerated.contains(pw)) << pw;
    EXPECT_NEAR(enumerated[pw], p, 1e-12) << pw;
    EXPECT_NEAR(std::exp2(model.log2Prob(pw)), p, 1e-12) << pw;
    mass += enumerated[pw];
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);  // the grammar's full language
}

// ----------------------------------------------- Markov factorization check

TEST(MarkovExactness, Log2ProbFactorizesIntoConditionals) {
  Dataset ds;
  ds.add("abcd", 5);
  ds.add("abce", 2);
  ds.add("xyz", 3);
  for (const MarkovSmoothing smoothing :
       {MarkovSmoothing::Backoff, MarkovSmoothing::Laplace}) {
    MarkovConfig cfg;
    cfg.order = 3;
    cfg.smoothing = smoothing;
    MarkovModel model(cfg);
    model.train(ds);
    Rng rng(4);
    for (int trial = 0; trial < 50; ++trial) {
      // Random probe over a small alphabet (seen and unseen transitions).
      std::string pw;
      const char alphabet[] = "abcdexyz1";
      const auto len = 1 + rng.below(6);
      for (std::uint64_t i = 0; i < len; ++i) {
        pw.push_back(alphabet[rng.below(sizeof(alphabet) - 1)]);
      }
      std::string padded(3, MarkovModel::kStart);
      padded += pw;
      padded += MarkovModel::kEnd;
      double manual = 0.0;
      for (std::size_t i = 3; i < padded.size(); ++i) {
        manual += std::log2(model.conditionalProb(
            std::string_view(padded).substr(i - 3, 3), padded[i]));
      }
      EXPECT_NEAR(model.log2Prob(pw), manual, 1e-10) << pw;
    }
  }
}

TEST(MarkovExactness, StartContextSeparatesFirstCharacter) {
  // 'b' never starts a password but follows 'a' everywhere: the start
  // context must capture that (whole-string normalization, Ma'14).
  Dataset ds;
  ds.add("ab", 10);
  ds.add("abab", 5);
  MarkovConfig cfg;
  cfg.order = 2;
  MarkovModel model(cfg);
  model.train(ds);
  const std::string startCtx(2, MarkovModel::kStart);
  EXPECT_GT(model.conditionalProb(startCtx, 'a'),
            10 * model.conditionalProb(startCtx, 'b'));
  EXPECT_GT(model.conditionalProb("ya", 'b'),  // suffix context backs off
            model.conditionalProb("ya", 'a'));
}

// --------------------------------------------------- fuzzy canonical checks

TEST(FuzzyExactness, EnumeratedScoresNeverExceedCanonical) {
  // The enumerator emits the max-probability derivation it generated for a
  // string; the meter scores the canonical (longest-prefix) parse. For
  // strings with a unique derivation the two are equal; in general the
  // enumerated probability can exceed the canonical one only via variant
  // dedup, which keeps the larger — so canonical <= enumerated + eps is
  // NOT guaranteed, but both must agree for every *trained* password.
  FuzzyConfig cfg;
  cfg.transformationPrior = 0.25;
  FuzzyPsm psm(cfg);
  psm.addBaseWord("password");
  psm.addBaseWord("dragon");
  Dataset train;
  train.add("password1", 8);
  train.add("Password1", 2);
  train.add("dragon22", 5);
  train.add("p@ssword1", 1);
  psm.train(train);

  std::map<std::string, double> enumerated;
  psm.enumerateGuesses(5000, [&](std::string_view g, double lp) {
    enumerated[std::string(g)] = lp;
    return true;
  });
  train.forEach([&](std::string_view pw, std::uint64_t) {
    const auto it = enumerated.find(std::string(pw));
    ASSERT_NE(it, enumerated.end()) << pw;
    EXPECT_NEAR(it->second, psm.log2Prob(pw), 1e-9) << pw;
  });
  // Total enumerated mass stays a sub-probability.
  double mass = 0.0;
  for (const auto& [pw, lp] : enumerated) mass += std::exp2(lp);
  EXPECT_LE(mass, 1.0 + 1e-9);
}

TEST(FuzzyExactness, UpdateEqualsRetrainFromScratch) {
  // Incremental update must land in exactly the same grammar state as
  // batch training (the adaptive meter has no drift).
  Dataset batch;
  batch.add("password1", 4);
  batch.add("Dragon99", 2);
  batch.add("tyxdqd123", 1);

  FuzzyPsm incremental;
  incremental.addBaseWord("password");
  incremental.addBaseWord("dragon");
  incremental.update("password1", 1);
  incremental.update("password1", 3);
  incremental.update("Dragon99", 2);
  incremental.update("tyxdqd123", 1);

  FuzzyPsm batchPsm;
  batchPsm.addBaseWord("password");
  batchPsm.addBaseWord("dragon");
  batchPsm.train(batch);

  for (const char* probe : {"password1", "Dragon99", "tyxdqd123",
                            "p@ssword1", "dragon99"}) {
    const double a = incremental.log2Prob(probe);
    const double b = batchPsm.log2Prob(probe);
    if (std::isinf(a)) {
      EXPECT_TRUE(std::isinf(b)) << probe;
    } else {
      EXPECT_NEAR(a, b, 1e-12) << probe;
    }
  }
}

}  // namespace
}  // namespace fpsm
