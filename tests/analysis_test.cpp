// GrammarValidator battery (ctest label: lint).
//
// Two corruption channels drive the tests, matching how a bad grammar can
// actually reach production:
//   * text tampering — FuzzyPsm::save output edited line-wise, then
//     reloaded (load() trusts counter relationships, so semantic defects
//     survive into a live grammar and even into a compiled artifact);
//   * raw views — hand-built FlatTableView/FlatTrieView fed to the
//     granular lint entry points, for defects the byte loader would refuse
//     to reproduce (mass drift, zero counts, unsorted/no-tree tries).
//
// Every seeded corruption asserts its exact LintCode, and the pre-publish
// gate tests prove a linted-bad artifact cannot reach readers unless the
// override is set.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/grammar_lint.h"
#include "artifact/artifact.h"
#include "core/fuzzy_psm.h"
#include "serve/grammar_snapshot.h"
#include "serve/meter_service.h"
#include "trie/flat_trie.h"
#include "util/check.h"

namespace fpsm {
namespace {

FuzzyPsm makeTrainedPsm(FuzzyConfig config = {}) {
  FuzzyPsm psm(config);
  psm.addBaseWord("password");
  psm.addBaseWord("monkey");
  psm.addBaseWord("dragon");
  psm.update("password1", 4);
  psm.update("Monkey", 3);
  psm.update("dragon123", 2);
  psm.update("12345", 2);
  return psm;
}

std::string saveToText(const FuzzyPsm& psm) {
  std::ostringstream out;
  psm.save(out);
  return out.str();
}

FuzzyPsm loadFromText(const std::string& text) {
  std::istringstream in(text);
  return FuzzyPsm::load(in);
}

/// Replaces the first line starting with `prefix` by `replacement`.
std::string tamperLine(const std::string& text, const std::string& prefix,
                       const std::string& replacement) {
  std::istringstream in(text);
  std::ostringstream out;
  std::string line;
  bool done = false;
  while (std::getline(in, line)) {
    if (!done && line.rfind(prefix, 0) == 0) {
      out << replacement << '\n';
      done = true;
    } else {
      out << line << '\n';
    }
  }
  EXPECT_TRUE(done) << "no line with prefix: " << prefix;
  return out.str();
}

const LintDiagnostic* findCode(const LintReport& report, LintCode code) {
  for (const auto& d : report.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Clean grammars audit clean, across all three representations.
// ---------------------------------------------------------------------------

TEST(GrammarLintTest, TrainedGrammarIsClean) {
  const FuzzyPsm psm = makeTrainedPsm();
  const LintReport report = GrammarValidator().lint(psm);
  EXPECT_TRUE(report.clean()) << report.render();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.worst(), LintSeverity::Info);
}

TEST(GrammarLintTest, TextRoundTripIsClean) {
  const FuzzyPsm psm = loadFromText(saveToText(makeTrainedPsm()));
  const LintReport report = GrammarValidator().lint(psm);
  EXPECT_TRUE(report.clean()) << report.render();
}

TEST(GrammarLintTest, CompiledArtifactIsClean) {
  const auto artifact =
      GrammarArtifact::fromBytes(compileArtifact(makeTrainedPsm()));
  const LintReport report = GrammarValidator().lint(artifact->grammar());
  EXPECT_TRUE(report.clean()) << report.render();
}

TEST(GrammarLintTest, ReverseGrammarIsClean) {
  FuzzyConfig config;
  config.matchReverse = true;
  const FuzzyPsm psm = makeTrainedPsm(config);
  EXPECT_TRUE(GrammarValidator().lint(psm).clean());
  const auto artifact = GrammarArtifact::fromBytes(compileArtifact(psm));
  EXPECT_TRUE(GrammarValidator().lint(artifact->grammar()).clean());
}

TEST(GrammarLintTest, UntrainedGrammarWarnsNotTrained) {
  FuzzyPsm psm;
  psm.addBaseWord("password");
  const LintReport report = GrammarValidator().lint(psm);
  EXPECT_TRUE(report.has(LintCode::NotTrained));
  EXPECT_TRUE(report.ok());  // warning, not error
  EXPECT_EQ(report.worst(), LintSeverity::Warning);
}

// ---------------------------------------------------------------------------
// Seeded corruption: raw count tables.
// ---------------------------------------------------------------------------

TEST(GrammarLintTest, MassNotConservedInRawTable) {
  const std::uint64_t counts[] = {2, 3};
  const std::uint32_t strOff[] = {0, 1};
  const std::uint32_t strLen[] = {1, 1};
  const char pool[] = "ab";
  // Counts sum to 5 but the stored total claims 10: every probability
  // computed from this table is off by 2x.
  const FlatTableView table(counts, strOff, strLen, pool, 2, 10);
  LintReport report;
  GrammarValidator().lintCountTable("structures", table, 0, report);
  const auto* d = findCode(report, LintCode::MassNotConserved);
  ASSERT_NE(d, nullptr) << report.render();
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_EQ(d->locus, "structures");
  EXPECT_FALSE(report.ok());
}

TEST(GrammarLintTest, MassWithinToleranceAccepted) {
  const std::uint64_t counts[] = {999999, 1};
  const std::uint32_t strOff[] = {0, 1};
  const std::uint32_t strLen[] = {1, 1};
  const char pool[] = "ab";
  const FlatTableView table(counts, strOff, strLen, pool, 2, 1000001);
  LintOptions loose;
  loose.massTolerance = 1e-5;  // deviation here is 1e-6
  LintReport report;
  GrammarValidator(loose).lintCountTable("structures", table, 0, report);
  EXPECT_FALSE(report.has(LintCode::MassNotConserved)) << report.render();
}

TEST(GrammarLintTest, ZeroCountEntryInRawTable) {
  const std::uint64_t counts[] = {0, 3};
  const std::uint32_t strOff[] = {0, 1};
  const std::uint32_t strLen[] = {1, 1};
  const char pool[] = "ab";
  const FlatTableView table(counts, strOff, strLen, pool, 2, 3);
  LintReport report;
  GrammarValidator().lintCountTable("segments[B1]", table, 1, report);
  const auto* d = findCode(report, LintCode::ZeroCountEntry);
  ASSERT_NE(d, nullptr) << report.render();
  EXPECT_EQ(d->severity, LintSeverity::Error);
}

TEST(GrammarLintTest, UnsortedRawTable) {
  const std::uint64_t counts[] = {2, 3};
  const std::uint32_t strOff[] = {0, 1};
  const std::uint32_t strLen[] = {1, 1};
  const char pool[] = "ba";  // forms "b", "a": descending
  const FlatTableView table(counts, strOff, strLen, pool, 2, 5);
  LintReport report;
  GrammarValidator().lintCountTable("structures", table, 0, report);
  EXPECT_TRUE(report.has(LintCode::TableUnsorted)) << report.render();
}

TEST(GrammarLintTest, SegmentLengthMismatchInRawTable) {
  const std::uint64_t counts[] = {2};
  const std::uint32_t strOff[] = {0};
  const std::uint32_t strLen[] = {2};
  const char pool[] = "ab";
  const FlatTableView table(counts, strOff, strLen, pool, 1, 2);
  LintReport report;
  // A 2-character form in the B_3 table.
  GrammarValidator().lintCountTable("segments[B3]", table, 3, report);
  EXPECT_TRUE(report.has(LintCode::SegmentLengthMismatch))
      << report.render();
}

TEST(GrammarLintTest, EmptyTableWithMass) {
  const FlatTableView table(nullptr, nullptr, nullptr, nullptr, 0, 7);
  LintReport report;
  GrammarValidator().lintCountTable("structures", table, 0, report);
  EXPECT_TRUE(report.has(LintCode::EmptyTable)) << report.render();
}

// ---------------------------------------------------------------------------
// Seeded corruption: raw flat tries.
// ---------------------------------------------------------------------------

TEST(GrammarLintTest, UnsortedTrieChildren) {
  // root --b--> 1, root --a--> 2: labels out of order, so child() binary
  // search misses edges.
  const std::uint32_t edgeBegin[] = {0, 2, 2};
  const std::uint32_t edgeMeta[] = {2, FlatTrieView::kTerminalBit,
                                    FlatTrieView::kTerminalBit};
  const std::uint32_t edgeTargets[] = {1, 2};
  const char edgeLabels[] = {'b', 'a'};
  const FlatTrieView trie(edgeBegin, edgeMeta, 3, edgeTargets, edgeLabels, 2,
                          2);
  LintReport report;
  GrammarValidator().lintFlatTrie("trie", trie, report);
  const auto* d = findCode(report, LintCode::TrieUnsortedChildren);
  ASSERT_NE(d, nullptr) << report.render();
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_EQ(d->locus, "trie.node[0]");
}

TEST(GrammarLintTest, TrieEdgeTargetOutOfRange) {
  const std::uint32_t edgeBegin[] = {0, 1};
  const std::uint32_t edgeMeta[] = {1, FlatTrieView::kTerminalBit};
  const std::uint32_t edgeTargets[] = {5};  // only nodes 0..1 exist
  const char edgeLabels[] = {'a'};
  const FlatTrieView trie(edgeBegin, edgeMeta, 2, edgeTargets, edgeLabels, 1,
                          1);
  LintReport report;
  GrammarValidator().lintFlatTrie("trie", trie, report);
  EXPECT_TRUE(report.has(LintCode::TrieIndexOutOfRange)) << report.render();
}

TEST(GrammarLintTest, TrieEdgeSliceOutOfRange) {
  const std::uint32_t edgeBegin[] = {0, 7};  // node 1 slice starts past end
  const std::uint32_t edgeMeta[] = {1, 1 | FlatTrieView::kTerminalBit};
  const std::uint32_t edgeTargets[] = {1};
  const char edgeLabels[] = {'a'};
  const FlatTrieView trie(edgeBegin, edgeMeta, 2, edgeTargets, edgeLabels, 1,
                          1);
  LintReport report;
  GrammarValidator().lintFlatTrie("trie", trie, report);
  EXPECT_TRUE(report.has(LintCode::TrieIndexOutOfRange)) << report.render();
}

TEST(GrammarLintTest, TrieNodeWithTwoParents) {
  // root --a--> 1, root --b--> 2, 1 --c--> 2: node 2 has two incoming
  // edges, so the structure is a DAG, not a tree.
  const std::uint32_t edgeBegin[] = {0, 2, 3};
  const std::uint32_t edgeMeta[] = {2, 1, FlatTrieView::kTerminalBit};
  const std::uint32_t edgeTargets[] = {1, 2, 2};
  const char edgeLabels[] = {'a', 'b', 'c'};
  const FlatTrieView trie(edgeBegin, edgeMeta, 3, edgeTargets, edgeLabels, 3,
                          1);
  LintReport report;
  GrammarValidator().lintFlatTrie("trie", trie, report);
  EXPECT_TRUE(report.has(LintCode::TrieStructure)) << report.render();
}

TEST(GrammarLintTest, TrieTerminalCountDrift) {
  const std::uint32_t edgeBegin[] = {0, 1};
  const std::uint32_t edgeMeta[] = {1, FlatTrieView::kTerminalBit};
  const std::uint32_t edgeTargets[] = {1};
  const char edgeLabels[] = {'a'};
  // One terminal node, but the header claims 3 stored words.
  const FlatTrieView trie(edgeBegin, edgeMeta, 2, edgeTargets, edgeLabels, 1,
                          3);
  LintReport report;
  GrammarValidator().lintFlatTrie("trie", trie, report);
  EXPECT_TRUE(report.has(LintCode::TrieStructure)) << report.render();
}

TEST(GrammarLintTest, CleanPointerTrieAndFlatTrieAgree) {
  const FuzzyPsm psm = makeTrainedPsm();
  LintReport pointer;
  GrammarValidator().lintTrie("trie", psm.baseDictionary(), pointer);
  EXPECT_TRUE(pointer.clean()) << pointer.render();

  const auto artifact = GrammarArtifact::fromBytes(compileArtifact(psm));
  LintReport flat;
  GrammarValidator().lintFlatTrie("trie", artifact->grammar().baseDictionary(),
                                  flat);
  EXPECT_TRUE(flat.clean()) << flat.render();
}

// ---------------------------------------------------------------------------
// Seeded corruption: transformation rules.
// ---------------------------------------------------------------------------

TEST(GrammarLintTest, NanPriorIsNonFinite) {
  LintReport report;
  GrammarValidator().lintTransformRule(
      "config.cap", 1, 2, std::numeric_limits<double>::quiet_NaN(), report);
  const auto* d = findCode(report, LintCode::NonFiniteValue);
  ASSERT_NE(d, nullptr) << report.render();
  EXPECT_EQ(d->severity, LintSeverity::Error);
}

TEST(GrammarLintTest, NegativePriorIsNegativeValue) {
  LintReport report;
  GrammarValidator().lintTransformRule("config.cap", 1, 2, -0.5, report);
  EXPECT_TRUE(report.has(LintCode::NegativeValue)) << report.render();
}

TEST(GrammarLintTest, YesExceedingTotalIsProbOutOfRange) {
  LintReport report;
  GrammarValidator().lintTransformRule("config.cap", 5, 2, 0.5, report);
  const auto* d = findCode(report, LintCode::ProbOutOfRange);
  ASSERT_NE(d, nullptr) << report.render();
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_EQ(d->locus, "config.cap");
}

TEST(GrammarLintTest, NanPriorInLiveGrammar) {
  FuzzyConfig config;
  config.transformationPrior = std::numeric_limits<double>::quiet_NaN();
  const FuzzyPsm psm = makeTrainedPsm(config);
  const LintReport report = GrammarValidator().lint(psm);
  EXPECT_TRUE(report.has(LintCode::NonFiniteValue)) << report.render();
  EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Seeded corruption: text tampering (survives FuzzyPsm::load).
// ---------------------------------------------------------------------------

TEST(GrammarLintTest, TamperedCapCounterIsProbOutOfRange) {
  const std::string text = saveToText(makeTrainedPsm());
  const FuzzyPsm psm = loadFromText(tamperLine(text, "cap\t", "cap\t100\t2"));
  const LintReport report = GrammarValidator().lint(psm);
  const auto* d = findCode(report, LintCode::ProbOutOfRange);
  ASSERT_NE(d, nullptr) << report.render();
  EXPECT_EQ(d->locus, "config.cap");
  EXPECT_FALSE(report.ok());
}

TEST(GrammarLintTest, DanglingSegmentRefFromTamperedStructure) {
  const std::string text = saveToText(makeTrainedPsm());
  // "12345" trained a B5 structure; point it at the never-trained B9 B9.
  const FuzzyPsm psm =
      loadFromText(tamperLine(text, "B5\t", "B9B9\t2"));
  const LintReport report = GrammarValidator().lint(psm);
  const auto* d = findCode(report, LintCode::DanglingSegmentRef);
  ASSERT_NE(d, nullptr) << report.render();
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_EQ(d->locus, "structures[B9B9]");
}

TEST(GrammarLintTest, BadStructureKeyFromTamperedStructure) {
  const std::string text = saveToText(makeTrainedPsm());
  const FuzzyPsm psm = loadFromText(tamperLine(text, "B5\t", "Bx5\t2"));
  const LintReport report = GrammarValidator().lint(psm);
  EXPECT_TRUE(report.has(LintCode::BadStructureKey)) << report.render();
  EXPECT_FALSE(report.ok());
}

TEST(GrammarLintTest, TamperedTrainedCountIsWarning) {
  const std::string text = saveToText(makeTrainedPsm());
  const FuzzyPsm psm = loadFromText(tamperLine(text, "trained\t",
                                               "trained\t5000"));
  const LintReport report = GrammarValidator().lint(psm);
  const auto* d = findCode(report, LintCode::CountInconsistency);
  ASSERT_NE(d, nullptr) << report.render();
  EXPECT_EQ(d->severity, LintSeverity::Warning);
  EXPECT_TRUE(report.ok());  // warnings do not block publish
  EXPECT_EQ(report.worst(), LintSeverity::Warning);
}

// ---------------------------------------------------------------------------
// The dangling reference passes the byte loader but is stopped by the
// pre-publish gate — the key end-to-end property of this layer.
// ---------------------------------------------------------------------------

class LintGateTest : public ::testing::Test {
 protected:
  std::shared_ptr<const GrammarArtifact> makeBadArtifact() {
    const std::string text = saveToText(makeTrainedPsm());
    const FuzzyPsm bad = loadFromText(tamperLine(text, "B5\t", "B9B9\t2"));
    // The semantic defect survives compilation AND byte validation.
    return GrammarArtifact::fromBytes(compileArtifact(bad));
  }
};

TEST_F(LintGateTest, SnapshotGateRejectsBadArtifact) {
  const auto artifact = makeBadArtifact();
  try {
    GrammarSnapshot::fromArtifact(artifact, 1);
    FAIL() << "expected GrammarLintError";
  } catch (const GrammarLintError& e) {
    EXPECT_TRUE(e.report().has(LintCode::DanglingSegmentRef));
    EXPECT_NE(std::string(e.what()).find("dangling-segment-ref"),
              std::string::npos);
  }
}

TEST_F(LintGateTest, SnapshotGateOverrideServesBadArtifact) {
  const auto snapshot =
      GrammarSnapshot::fromArtifact(makeBadArtifact(), 1, /*lint=*/false);
  EXPECT_TRUE(snapshot->trained());
}

TEST_F(LintGateTest, MeterServiceRejectsBadArtifactOnColdStart) {
  MeterServiceConfig config;
  config.backgroundPublisher = false;
  EXPECT_THROW(MeterService(makeBadArtifact(), config), GrammarLintError);
}

TEST_F(LintGateTest, MeterServiceOverrideServesBadArtifact) {
  MeterServiceConfig config;
  config.backgroundPublisher = false;
  config.lintArtifacts = false;
  MeterService service(makeBadArtifact(), config);
  EXPECT_GE(service.score("password1").bits, 0.0);
}

TEST_F(LintGateTest, PublishFromArtifactKeepsServingOnRejection) {
  MeterServiceConfig config;
  config.backgroundPublisher = false;
  MeterService service(makeTrainedPsm(), config);
  const double before = service.score("password1").bits;
  EXPECT_THROW(service.publishFromArtifact(makeBadArtifact()),
               GrammarLintError);
  // The rejected artifact must not have displaced the healthy grammar.
  EXPECT_EQ(service.generation(), 0u);
  EXPECT_EQ(service.score("password1").bits, before);
  // A clean artifact still publishes afterwards.
  const auto good =
      GrammarArtifact::fromBytes(compileArtifact(makeTrainedPsm()));
  EXPECT_EQ(service.publishFromArtifact(good), 1u);
}

// ---------------------------------------------------------------------------
// Report surface: rendering, JSON, worst-severity mapping.
// ---------------------------------------------------------------------------

TEST(LintReportTest, RenderAndJson) {
  LintReport report;
  report.add(LintCode::MassNotConserved, LintSeverity::Error, "structures",
             "sums to 5/10");
  report.add(LintCode::CountInconsistency, LintSeverity::Warning,
             "config.cap", "drift");
  EXPECT_EQ(report.errorCount(), 1u);
  EXPECT_EQ(report.warningCount(), 1u);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.worst(), LintSeverity::Error);

  const std::string text = report.render();
  EXPECT_NE(text.find("error [mass-not-conserved] structures"),
            std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);

  const std::string json = report.renderJson();
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  EXPECT_NE(json.find("\"worst\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"code\": \"mass-not-conserved\""),
            std::string::npos);
}

TEST(LintReportTest, JsonEscapesControlCharacters) {
  LintReport report;
  report.add(LintCode::BadStructureKey, LintSeverity::Error,
             "structures[\"a\\b\tc]", "quote \" backslash \\");
  const std::string json = report.renderJson();
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
}

TEST(LintReportTest, CleanReportJson) {
  const LintReport report;
  EXPECT_TRUE(report.clean());
  const std::string json = report.renderJson();
  EXPECT_NE(json.find("\"clean\": true"), std::string::npos);
  EXPECT_NE(json.find("\"worst\": \"none\""), std::string::npos);
}

TEST(LintReportTest, StableCodeNames) {
  // The CLI and CI grep for these identifiers; renames are breaking.
  EXPECT_STREQ(lintCodeName(LintCode::MassNotConserved),
               "mass-not-conserved");
  EXPECT_STREQ(lintCodeName(LintCode::DanglingSegmentRef),
               "dangling-segment-ref");
  EXPECT_STREQ(lintCodeName(LintCode::TrieUnsortedChildren),
               "trie-unsorted-children");
  EXPECT_STREQ(lintCodeName(LintCode::TrieIndexOutOfRange),
               "trie-index-out-of-range");
  EXPECT_STREQ(lintSeverityName(LintSeverity::Error), "error");
}

// ---------------------------------------------------------------------------
// lintGrammarFile: magic-sniffed dispatch over both on-disk formats.
// ---------------------------------------------------------------------------

TEST(LintGrammarFileTest, TextAndArtifactFilesBothClean) {
  const FuzzyPsm psm = makeTrainedPsm();
  const std::string textPath = testing::TempDir() + "lint_grammar.fpsm";
  {
    std::ofstream out(textPath);
    psm.save(out);
  }
  EXPECT_TRUE(lintGrammarFile(textPath).clean());

  const std::string binPath = testing::TempDir() + "lint_grammar.fpsmb";
  writeArtifactFile(psm, binPath);
  EXPECT_TRUE(lintGrammarFile(binPath).clean());
}

TEST(LintGrammarFileTest, TamperedTextFileReportsDanglingRef) {
  const std::string text =
      tamperLine(saveToText(makeTrainedPsm()), "B5\t", "B9B9\t2");
  const std::string path = testing::TempDir() + "lint_tampered.fpsm";
  {
    std::ofstream out(path);
    out << text;
  }
  const LintReport report = lintGrammarFile(path);
  EXPECT_TRUE(report.has(LintCode::DanglingSegmentRef)) << report.render();
}

TEST(LintGrammarFileTest, MissingFileThrowsIoError) {
  EXPECT_THROW(lintGrammarFile("/nonexistent/grammar.fpsm"), IoError);
}

// ---------------------------------------------------------------------------
// FPSM_CHECK / FPSM_DCHECK runtime contract.
// ---------------------------------------------------------------------------

using CheckMacrosDeathTest = ::testing::Test;

TEST(CheckMacrosDeathTest, CheckAbortsWithLocation) {
  EXPECT_DEATH(FPSM_CHECK(1 == 2), "FPSM_CHECK failed: 1 == 2");
}

TEST(CheckMacrosTest, CheckPassesSilently) {
  FPSM_CHECK(1 + 1 == 2);  // must not abort
  SUCCEED();
}

#if defined(NDEBUG) && !defined(FPSM_FORCE_DCHECKS)
TEST(CheckMacrosTest, DcheckCompiledOutInRelease) {
  bool evaluated = false;
  FPSM_DCHECK((evaluated = true));  // parsed but never evaluated
  EXPECT_FALSE(evaluated);
}
#else
TEST(CheckMacrosDeathTest, DcheckAbortsInDebug) {
  EXPECT_DEATH(FPSM_DCHECK(false), "FPSM_CHECK failed");
}
#endif

}  // namespace
}  // namespace fpsm
