// Concurrency suite for the serving layer (src/serve).
//
// The stress tests here are the targets of the Sanitize build
// (-fsanitize=thread); they carry the ctest label "concurrency" so
// sanitizer runs can select exactly them:
//   ctest -L concurrency --output-on-failure
//
// Core invariant under test: every score a reader observes was computed
// against exactly one published snapshot — the one named by the reported
// generation — and matches a single-threaded oracle replay of the update
// schedule up to that generation. Torn reads, lost updates, or a cache
// entry surviving a publish would all break the exact-equality check.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fuzzy_psm.h"
#include "serve/grammar_snapshot.h"
#include "serve/meter_service.h"
#include "serve/score_cache.h"
#include "serve/update_queue.h"
#include "util/error.h"

namespace fpsm {
namespace {

FuzzyPsm seedGrammar() {
  FuzzyPsm psm;
  for (const char* w :
       {"password", "p@ssword", "123456", "dragon", "letmein", "monkey",
        "qwerty", "iloveyou"}) {
    psm.addBaseWord(w);
  }
  psm.update("password1", 20);
  psm.update("P@ssw0rd", 5);
  psm.update("dragon123", 8);
  psm.update("123456", 30);
  psm.update("letmein99", 4);
  psm.update("tyxdqd123", 2);  // PCFG-fallback structure
  psm.update("Monkey2020", 3);
  return psm;
}

const std::vector<std::string>& probes() {
  static const std::vector<std::string> kProbes = {
      "password1", "P@ssw0rd",  "dragon123", "123456",   "letmein99",
      "tyxdqd123", "Monkey2020", "qwerty12",  "iloveyou", "p4ssword1",
      "Dragon123", "zzzzzz",
  };
  return kProbes;
}

/// One deterministic update batch per generation-to-be.
std::vector<UpdateQueue::Batch> updateSchedule(std::size_t batches) {
  std::vector<UpdateQueue::Batch> schedule;
  schedule.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    UpdateQueue::Batch batch;
    batch.emplace_back("password1", 1 + b % 3);
    batch.emplace_back("qwerty12", 1);
    if (b % 2 == 0) batch.emplace_back("iloveyou", 2);
    if (b % 3 == 0) batch.emplace_back("Dragon123", 1);
    if (b % 5 == 0) batch.emplace_back("zzzzzz", 1);
    schedule.push_back(std::move(batch));
  }
  return schedule;
}

/// oracle[g][p] = strengthBits of probe p after replaying batches [0, g).
std::vector<std::vector<double>> oracleBitsPerGeneration(
    const std::vector<UpdateQueue::Batch>& schedule) {
  FuzzyPsm replica = seedGrammar();
  std::vector<std::vector<double>> oracle;
  oracle.reserve(schedule.size() + 1);
  auto record = [&] {
    std::vector<double> bits;
    bits.reserve(probes().size());
    for (const auto& p : probes()) bits.push_back(replica.strengthBits(p));
    oracle.push_back(std::move(bits));
  };
  record();  // generation 0
  for (const auto& batch : schedule) {
    for (const auto& [pw, n] : batch) replica.update(pw, n);
    record();
  }
  return oracle;
}

// ------------------------------------------------------------ ScoreCache

TEST(ScoreCacheTest, InsertLookupAndLru) {
  ScoreCache cache(2, 1);  // single shard, capacity 2: deterministic LRU
  EXPECT_FALSE(cache.lookup(1, "a").has_value());
  cache.insert(1, "a", 10.0);
  cache.insert(1, "b", 20.0);
  ASSERT_TRUE(cache.lookup(1, "a").has_value());  // refreshes "a"
  cache.insert(1, "c", 30.0);                     // evicts LRU = "b"
  EXPECT_FALSE(cache.lookup(1, "b").has_value());
  EXPECT_EQ(cache.lookup(1, "a"), 10.0);
  EXPECT_EQ(cache.lookup(1, "c"), 30.0);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScoreCacheTest, StaleGenerationIsNeverServed) {
  ScoreCache cache(8, 1);
  cache.insert(1, "pw", 42.0);
  EXPECT_EQ(cache.lookup(1, "pw"), 42.0);
  // A publish bumped the generation: the old entry must not be served,
  // and must be evicted so it cannot linger.
  EXPECT_FALSE(cache.lookup(2, "pw").has_value());
  EXPECT_FALSE(cache.lookup(1, "pw").has_value());  // gone, not resurrected
  EXPECT_EQ(cache.stats().staleEvictions, 1u);
}

TEST(ScoreCacheTest, OverwriteMovesEntryToNewGeneration) {
  ScoreCache cache(8, 1);
  cache.insert(1, "pw", 42.0);
  cache.insert(2, "pw", 43.0);
  EXPECT_EQ(cache.lookup(2, "pw"), 43.0);
  EXPECT_EQ(cache.size(), 1u);
  // A lookup under the old generation misses — and evicts.
  EXPECT_FALSE(cache.lookup(1, "pw").has_value());
  EXPECT_FALSE(cache.lookup(2, "pw").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// Eviction accounting under contention: every insert and every capacity
// eviction is counted in the same critical section as the list mutation
// it describes, so once the writers are joined the books must balance
// EXACTLY — inserts minus evictions equals resident entries. A counter
// bumped outside the shard lock (the accounting bug this test pins down)
// drifts under exactly this workload: distinct keys, all shards, heavy
// capacity pressure.
TEST(ScoreCacheTest, ConcurrentInsertsBalanceEvictionCounters) {
  ScoreCache cache(64, 8);
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&cache, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        cache.insert(1, "pw-" + std::to_string(t) + "-" + std::to_string(i),
                     static_cast<double>(i));
      }
    });
  }
  for (auto& w : writers) w.join();

  const ScoreCache::Stats stats = cache.stats();
  // Distinct keys and one generation: no overwrites, no stale evictions.
  EXPECT_EQ(stats.inserts, static_cast<std::uint64_t>(kThreads) *
                               kKeysPerThread);
  EXPECT_EQ(stats.staleEvictions, 0u);
  EXPECT_EQ(stats.inserts - stats.capacityEvictions,
            static_cast<std::uint64_t>(cache.size()));
  // Capacity 64 over 8 shards: every shard is saturated by this workload,
  // so the resident count is exactly the configured capacity.
  EXPECT_EQ(cache.size(), 64u);
}

// ------------------------------------------------------------ UpdateQueue

TEST(UpdateQueueTest, CoalescesCountsPerPassword) {
  UpdateQueue q;
  q.push("a", 2);
  q.push("b", 1);
  q.push("a", 3);
  q.push("zero-count", 0);  // ignored
  EXPECT_EQ(q.pendingDistinct(), 2u);
  EXPECT_EQ(q.pendingTotal(), 6u);
  auto batch = q.drain();
  ASSERT_EQ(batch.size(), 2u);
  std::uint64_t aCount = 0, bCount = 0;
  for (const auto& [pw, n] : batch) {
    if (pw == "a") aCount = n;
    if (pw == "b") bCount = n;
  }
  EXPECT_EQ(aCount, 5u);
  EXPECT_EQ(bCount, 1u);
  EXPECT_EQ(q.pendingTotal(), 0u);
  EXPECT_TRUE(q.drain().empty());
}

TEST(UpdateQueueTest, ConcurrentPushesLoseNothing) {
  UpdateQueue q;
  constexpr int kThreads = 4;
  constexpr int kPushes = 2000;
  std::vector<std::thread> pushers;
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([&q, t] {
      for (int i = 0; i < kPushes; ++i) {
        q.push("pw" + std::to_string(i % 7), 1);
        q.push("shared", 1);
        (void)t;
      }
    });
  }
  for (auto& t : pushers) t.join();
  EXPECT_EQ(q.pendingTotal(),
            static_cast<std::uint64_t>(kThreads) * kPushes * 2);
  std::uint64_t drained = 0;
  for (const auto& [pw, n] : q.drain()) {
    (void)pw;
    drained += n;
  }
  EXPECT_EQ(drained, static_cast<std::uint64_t>(kThreads) * kPushes * 2);
}

// Adversarial streams: duplicates that straddle drain boundaries must not
// re-coalesce across batches, and each batch must carry exactly the
// occurrences pushed since the previous drain.
TEST(UpdateQueueTest, DuplicatesAcrossDrainBoundariesStayInTheirBatch) {
  UpdateQueue q;
  q.push("dup", 3);
  q.push("only-first", 1);
  const auto first = q.drain();
  q.push("dup", 5);  // same password, next epoch
  q.push("only-second", 2);
  const auto second = q.drain();

  auto countOf = [](const UpdateQueue::Batch& batch, std::string_view pw) {
    std::uint64_t n = 0;
    for (const auto& [p, c] : batch) {
      if (p == pw) n += c;
    }
    return n;
  };
  EXPECT_EQ(countOf(first, "dup"), 3u);
  EXPECT_EQ(countOf(second, "dup"), 5u);
  EXPECT_EQ(countOf(first, "only-second"), 0u);
  EXPECT_EQ(countOf(second, "only-first"), 0u);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(second.size(), 2u);
}

// The queue is a transport, not a validator: zero counts vanish, but
// otherwise entries pass through verbatim — empty strings and oversized
// passwords included. Validation lives upstream (MeterService::update /
// OnlineUpdater::accept), so the queue must not corrupt or drop what a
// buggy caller feeds it.
TEST(UpdateQueueTest, CarriesEmptyAndOversizedEntriesVerbatim) {
  UpdateQueue q;
  const std::string oversized(64 * 1024, 'x');
  q.push("", 2);
  q.push(oversized, 1);
  q.push("", 0);  // zero-count still ignored, even for odd keys
  EXPECT_EQ(q.pendingDistinct(), 2u);
  EXPECT_EQ(q.pendingTotal(), 3u);
  const auto batch = q.drain();
  ASSERT_EQ(batch.size(), 2u);
  for (const auto& [pw, n] : batch) {
    if (pw.empty()) {
      EXPECT_EQ(n, 2u);
    } else {
      EXPECT_EQ(pw.size(), oversized.size());
      EXPECT_EQ(pw, oversized);
      EXPECT_EQ(n, 1u);
    }
  }
}

// Conservation under interleaved drains: concurrent pushers and drainers
// racing on one queue must neither lose nor duplicate a single occurrence
// — every push lands in exactly one drained batch. (TSan target.)
TEST(UpdateQueueTest, InterleavedConcurrentDrainsConserveOccurrences) {
  UpdateQueue q;
  constexpr int kPushers = 3;
  constexpr int kDrainers = 2;
  constexpr int kPushes = 2000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> drainedTotal{0};

  std::vector<std::thread> drainers;
  for (int d = 0; d < kDrainers; ++d) {
    drainers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (const auto& [pw, n] : q.drain()) {
          (void)pw;
          drainedTotal.fetch_add(n, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> pushers;
  for (int t = 0; t < kPushers; ++t) {
    pushers.emplace_back([&q, t] {
      for (int i = 0; i < kPushes; ++i) {
        q.push("pw" + std::to_string((t * kPushes + i) % 11),
               1 + static_cast<std::uint64_t>(i % 3));
      }
    });
  }
  for (auto& t : pushers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : drainers) t.join();
  // Final sweep: whatever raced past the drainers' last pass.
  for (const auto& [pw, n] : q.drain()) {
    (void)pw;
    drainedTotal.fetch_add(n, std::memory_order_relaxed);
  }

  // Each pusher contributed sum over i of (1 + i%3) occurrences.
  std::uint64_t expected = 0;
  for (int i = 0; i < kPushes; ++i) expected += 1 + i % 3;
  expected *= kPushers;
  EXPECT_EQ(drainedTotal.load(), expected);
  EXPECT_EQ(q.pendingTotal(), 0u);
  EXPECT_EQ(q.pendingDistinct(), 0u);
}

// -------------------------------------------------------- GrammarSnapshot

TEST(GrammarSnapshotTest, FrozenCopyIsImmutableUnderUpdates) {
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(seedGrammar(), cfg);

  const auto before = service.snapshot();
  EXPECT_EQ(before->generation(), 0u);
  const double bitsBefore = before->strengthBits("password1");

  service.update("password1", 50);
  EXPECT_EQ(service.publishNow(), 1u);

  // The retired snapshot still scores exactly as it did.
  EXPECT_EQ(before->strengthBits("password1"), bitsBefore);
  EXPECT_EQ(before->generation(), 0u);
  // The published snapshot reflects the fold.
  const auto after = service.snapshot();
  EXPECT_EQ(after->generation(), 1u);
  EXPECT_LT(after->strengthBits("password1"), bitsBefore);
}

TEST(GrammarSnapshotTest, MatchesUnderlyingGrammarExactly) {
  const FuzzyPsm psm = seedGrammar();
  const auto snap = GrammarSnapshot::freeze(psm, 7);
  EXPECT_EQ(snap->generation(), 7u);
  for (const auto& p : probes()) {
    EXPECT_EQ(snap->log2Prob(p), psm.log2Prob(p)) << p;
    EXPECT_EQ(snap->parse(p).structure, psm.parse(p).structure) << p;
  }
}

// ------------------------------------------------------------ MeterService

TEST(MeterServiceTest, RequiresTrainedGrammar) {
  FuzzyPsm untrained;
  untrained.addBaseWord("password");
  EXPECT_THROW(MeterService(std::move(untrained), {}), NotTrained);
}

TEST(MeterServiceTest, RejectsInvalidUpdateOnCallerThread) {
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(seedGrammar(), cfg);
  EXPECT_THROW(service.update(""), InvalidArgument);
  EXPECT_THROW(service.update("a\tb"), InvalidArgument);
  EXPECT_EQ(service.pendingUpdates(), 0u);
}

TEST(MeterServiceTest, ScoreMatchesGrammarAndCacheHitsAgree) {
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(seedGrammar(), cfg);
  const FuzzyPsm replica = seedGrammar();
  for (const auto& p : probes()) {
    const auto first = service.score(p);
    EXPECT_EQ(first.bits, replica.strengthBits(p)) << p;
    EXPECT_EQ(first.generation, 0u);
    EXPECT_FALSE(first.fromCache);
    const auto second = service.score(p);
    EXPECT_TRUE(second.fromCache) << p;
    EXPECT_EQ(second.bits, first.bits) << p;
  }
  EXPECT_GT(service.stats().cache.hits, 0u);
}

TEST(MeterServiceTest, PublishInvalidatesCachedScores) {
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(seedGrammar(), cfg);
  const auto cold = service.score("password1");
  const auto warm = service.score("password1");
  ASSERT_TRUE(warm.fromCache);

  service.update("password1", 100);
  service.publishNow();

  FuzzyPsm replica = seedGrammar();
  replica.update("password1", 100);
  const auto fresh = service.score("password1");
  EXPECT_FALSE(fresh.fromCache);  // stale entry evicted, not served
  EXPECT_EQ(fresh.generation, 1u);
  EXPECT_EQ(fresh.bits, replica.strengthBits("password1"));
  EXPECT_NE(fresh.bits, cold.bits);
  EXPECT_GT(service.stats().cache.staleEvictions, 0u);
}

TEST(MeterServiceTest, PublishNowWithoutPendingKeepsGeneration) {
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(seedGrammar(), cfg);
  EXPECT_EQ(service.publishNow(), 0u);
  EXPECT_EQ(service.generation(), 0u);
}

TEST(MeterServiceTest, UpdateSinkDivertsUpdatesFromQueue) {
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(seedGrammar(), cfg);

  // With a sink installed, update() forwards instead of queueing...
  std::vector<std::pair<std::string, std::uint64_t>> captured;
  service.setUpdateSink([&](std::string_view pw, std::uint64_t n) {
    captured.emplace_back(std::string(pw), n);
  });
  service.update("password1", 3);
  service.update("zzzzzz");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], (std::pair<std::string, std::uint64_t>{
                             "password1", 3}));
  EXPECT_EQ(captured[1],
            (std::pair<std::string, std::uint64_t>{"zzzzzz", 1}));
  EXPECT_EQ(service.pendingUpdates(), 0u);
  // ...so publishNow() has nothing to fold and the generation holds.
  EXPECT_EQ(service.publishNow(), 0u);
  // Validation still happens on the caller's thread, before the sink.
  EXPECT_THROW(service.update(""), InvalidArgument);
  EXPECT_EQ(captured.size(), 2u);
  // Stats still count sink-routed occurrences as accepted updates.
  EXPECT_EQ(service.stats().updates, 4u);

  // Detaching the sink restores the in-process queue path.
  service.setUpdateSink(nullptr);
  service.update("password1", 2);
  EXPECT_EQ(captured.size(), 2u);
  EXPECT_EQ(service.pendingUpdates(), 2u);
  EXPECT_EQ(service.publishNow(), 1u);
}

TEST(MeterServiceTest, BatchSharesOneGenerationAndMatchesSingles) {
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;
  MeterService service(seedGrammar(), cfg);
  std::vector<std::string> pws = probes();
  // Explicit thread request exercises the parallelWorkerCount fix: small
  // batches must still honor the requested fan-out.
  const auto batch = service.scoreBatch(pws, 4);
  ASSERT_EQ(batch.size(), pws.size());
  const FuzzyPsm replica = seedGrammar();
  for (std::size_t i = 0; i < pws.size(); ++i) {
    EXPECT_EQ(batch[i].generation, 0u);
    EXPECT_EQ(batch[i].bits, replica.strengthBits(pws[i])) << pws[i];
  }
}

TEST(MeterServiceTest, BackgroundPublisherFoldsUpdates) {
  MeterServiceConfig cfg;
  cfg.backgroundPublisher = true;
  cfg.publishInterval = std::chrono::milliseconds(2);
  MeterService service(seedGrammar(), cfg);

  service.update("password1", 64);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while ((service.generation() == 0 || service.pendingUpdates() > 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(service.generation(), 1u);
  FuzzyPsm replica = seedGrammar();
  replica.update("password1", 64);
  EXPECT_EQ(service.score("password1").bits, replica.strengthBits("password1"));
  EXPECT_GE(service.stats().publishes, 1u);
  EXPECT_EQ(service.stats().updates, 64u);
}

// ------------------------------------------------- multi-threaded stress

// N readers score continuously while a writer floods update() and
// publishes after every batch. Every observed (generation, bits) pair must
// equal the single-threaded oracle replay — exact double equality, since
// reader and oracle run the identical deterministic computation. Any torn
// read, lost update, or stale cache hit shows up as a mismatch.
TEST(ServeStress, ReadersObserveOnlyPublishedSnapshots) {
  constexpr std::size_t kBatches = 40;
  constexpr int kReaders = 4;

  const auto schedule = updateSchedule(kBatches);
  const auto oracle = oracleBitsPerGeneration(schedule);

  MeterServiceConfig cfg;
  cfg.backgroundPublisher = false;  // writer publishes explicitly
  cfg.cacheCapacity = 64;           // small: forces eviction + stale paths
  cfg.cacheShards = 4;
  MeterService service(seedGrammar(), cfg);

  std::atomic<bool> writerDone{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> scoresTaken{0};
  std::mutex firstMismatchMutex;
  std::string firstMismatch;

  auto checkScore = [&](std::size_t probeIdx, const MeterService::Score& s) {
    ++scoresTaken;
    if (s.generation >= oracle.size() ||
        s.bits != oracle[s.generation][probeIdx]) {
      ++mismatches;
      const std::lock_guard<std::mutex> lock(firstMismatchMutex);
      if (firstMismatch.empty()) {
        firstMismatch = probes()[probeIdx] + " @gen " +
                        std::to_string(s.generation) + ": got " +
                        std::to_string(s.bits);
      }
    }
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);  // staggered start
      while (!writerDone.load(std::memory_order_acquire)) {
        const std::size_t probeIdx = i++ % probes().size();
        checkScore(probeIdx, service.score(probes()[probeIdx]));
      }
      // A final full sweep against the terminal snapshot.
      for (std::size_t p = 0; p < probes().size(); ++p) {
        checkScore(p, service.score(probes()[p]));
      }
    });
  }

  std::thread writer([&] {
    for (const auto& batch : schedule) {
      for (const auto& [pw, n] : batch) service.update(pw, n);
      service.publishNow();
      std::this_thread::yield();
    }
    writerDone.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u) << "first mismatch: " << firstMismatch;
  EXPECT_GT(scoresTaken.load(), 0u);
  EXPECT_EQ(service.generation(), kBatches);
  // Terminal state equals the oracle's terminal state for every probe.
  for (std::size_t p = 0; p < probes().size(); ++p) {
    EXPECT_EQ(service.score(probes()[p]).bits, oracle.back()[p])
        << probes()[p];
  }
}

// Same shape but with the background publisher doing the folding: readers
// and batch scorers race a writer thread and the publisher thread. Scores
// cannot be checked against a per-generation oracle (publish points are
// nondeterministic), so the invariant checked is weaker but still sharp:
// every score must match the grammar obtained by replaying SOME prefix of
// the coalesced update stream — verified at the end for the terminal
// state — and the run must be data-race-free (the TSan target).
TEST(ServeStress, BackgroundPublisherUnderMixedTraffic) {
  constexpr int kReaders = 3;
  constexpr std::size_t kUpdates = 400;

  MeterServiceConfig cfg;
  cfg.backgroundPublisher = true;
  cfg.publishInterval = std::chrono::milliseconds(1);
  cfg.cacheCapacity = 32;
  MeterService service(seedGrammar(), cfg);

  std::atomic<bool> writerDone{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = static_cast<std::size_t>(r);
      while (!writerDone.load(std::memory_order_acquire)) {
        if (i % 5 == 0) {
          (void)service.scoreBatch(probes(), 2);
        } else {
          (void)service.score(probes()[i % probes().size()]);
        }
        ++i;
      }
    });
  }

  std::thread writer([&] {
    for (std::size_t i = 0; i < kUpdates; ++i) {
      service.update(probes()[i % probes().size()], 1);
      if (i % 16 == 0) std::this_thread::yield();
    }
    writerDone.store(true, std::memory_order_release);
  });

  writer.join();
  for (auto& t : readers) t.join();

  // Flush whatever the background publisher had not folded yet, then the
  // terminal state must equal the full replay.
  service.publishNow();
  ASSERT_EQ(service.pendingUpdates(), 0u);
  FuzzyPsm replica = seedGrammar();
  for (std::size_t i = 0; i < kUpdates; ++i) {
    replica.update(probes()[i % probes().size()], 1);
  }
  for (const auto& p : probes()) {
    EXPECT_EQ(service.score(p).bits, replica.strengthBits(p)) << p;
  }
  EXPECT_EQ(service.stats().updates, kUpdates);
}

}  // namespace
}  // namespace fpsm
